package kleb

import (
	"bytes"
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/workload"
)

// DefaultDrainInterval is how often the controller wakes to pull samples
// out of the kernel buffer. The paper's design leaves this to the
// scheduler's natural cadence; 100ms keeps the buffer comfortably ahead of
// a 100µs sampling rate with the default ring size.
const DefaultDrainInterval = 50 * ktime.Millisecond

// ReadMax bounds one drain; large enough to empty the default ring.
const ReadMax = DefaultBufferSamples

// DefaultLogPath is where the controller writes its CSV sample log unless
// Controller.LogPath overrides it.
const DefaultLogPath = "/var/log/kleb.csv"

// Controller is the user-space half of K-LEB (Fig 1's "Controller
// Process"): it configures the module over ioctl, starts collection, wakes
// periodically to drain the kernel buffer, logs the samples, and stops the
// module when the monitored lineage has exited.
type Controller struct {
	Cfg           ModuleConfig
	DrainInterval ktime.Duration

	// LogPath overrides where the CSV log lands in the simulated filesystem
	// ("" = DefaultLogPath).
	LogPath string
	// LogWriter, if set, additionally receives every CSV chunk as it is
	// written — the injectable sink that frees callers from fishing the log
	// back out of the simulated FS.
	LogWriter io.Writer

	// Samples accumulates everything drained, in capture order.
	Samples []monitor.Sample
	// Err records a fatal module error (failed CONFIG/START); the
	// controller exits non-zero instead of polling forever.
	Err error

	state       int
	pending     []monitor.Sample // drained but not yet logged
	wroteHeader bool
	done        bool
}

const (
	ctlConfigure = iota
	ctlStart
	ctlSleep
	ctlDrain
	ctlLog
	ctlWrite
	ctlCheck
	ctlFinal
	ctlStop
)

var _ kernel.Program = (*Controller)(nil)

// NewController builds a controller for cfg.
func NewController(cfg ModuleConfig) *Controller {
	return &Controller{Cfg: cfg, DrainInterval: DefaultDrainInterval}
}

// Next implements kernel.Program as the controller's event loop.
func (c *Controller) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	switch c.state {
	case ctlConfigure:
		c.state = ctlStart
		return ioctlOp("KLEB_CONFIG", CmdConfig, c.Cfg)
	case ctlStart:
		if err, bad := p.SyscallResult.(error); bad {
			// CONFIG failed; abort rather than poll a dead module forever.
			c.Err = err
			c.state = ctlStop
			return kernel.OpExit{Code: 1}
		}
		c.state = ctlSleep
		return ioctlOp("KLEB_START", CmdStart, nil)
	case ctlSleep:
		if err, bad := p.SyscallResult.(error); bad {
			c.Err = err
			c.state = ctlStop
			return kernel.OpExit{Code: 1}
		}
		c.state = ctlDrain
		return kernel.OpSleep{D: c.DrainInterval}
	case ctlDrain:
		c.state = ctlLog
		return ioctlOp("KLEB_READ", CmdRead, ReadRequest{Max: ReadMax})
	case ctlLog:
		if got, ok := p.SyscallResult.([]monitor.Sample); ok && len(got) > 0 {
			c.pending = got
			c.Samples = append(c.Samples, got...)
		} else {
			c.pending = nil
		}
		if len(c.pending) > 0 {
			c.state = ctlWrite
			return c.logOp(k, len(c.pending))
		}
		c.state = ctlCheck
		return c.Next(k, p)
	case ctlWrite:
		c.state = ctlCheck
		return c.writeOp(len(c.pending))
	case ctlCheck:
		c.state = ctlFinal
		return ioctlOp("KLEB_STATUS", CmdStatus, nil)
	case ctlFinal:
		st, _ := p.SyscallResult.(Status)
		if st.Done {
			if st.Available > 0 {
				// Final drain until the buffer is empty.
				c.state = ctlLog
				return ioctlOp("KLEB_READ", CmdRead, ReadRequest{Max: ReadMax})
			}
			c.state = ctlStop
			return ioctlOp("KLEB_STOP", CmdStop, nil)
		}
		c.state = ctlDrain
		return kernel.OpSleep{D: c.DrainInterval}
	case ctlStop:
		c.done = true
		return kernel.OpExit{}
	}
	return kernel.OpExit{}
}

// logOp models writing n samples to the log file: a short user-space
// formatting stretch plus a write syscall whose kernel side (page-cache
// copy, VFS) dominates the cost.
func (c *Controller) logOp(k *kernel.Kernel, n int) kernel.Op {
	return kernel.OpExec{Block: isa.Block{
		Instr:    20_000 + uint64(n)*1_500,
		Loads:    6_000 + uint64(n)*400,
		Stores:   3_000 + uint64(n)*300,
		Branches: 2_000 + uint64(n)*120,
		Mem: isa.MemPattern{
			Base:      workload.ToolRegion(),
			Footprint: 256 << 10,
			Stride:    8,
		},
		Priv: isa.User,
	}}
}

// writeOp is the log write syscall (issued after the format block): the
// pending samples are rendered as CSV rows and appended to the log file in
// the kernel's filesystem, paying the journal/flush cost plus the VFS
// per-byte copy price.
func (c *Controller) writeOp(n int) kernel.Op {
	return kernel.OpSyscall{Name: "write", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
		k.ChargeKernel(350 * ktime.Microsecond) // journal + page-cache flush
		var buf bytes.Buffer
		if !c.wroteHeader {
			c.wroteHeader = true
			buf.WriteString("time_us")
			for _, ev := range c.Cfg.Events {
				buf.WriteByte(',')
				buf.WriteString(ev.String())
			}
			buf.WriteByte('\n')
		}
		for _, s := range c.pending {
			fmt.Fprintf(&buf, "%.1f", float64(s.Time)/1000)
			for i := range c.Cfg.Events {
				var v uint64
				if i < len(s.Deltas) {
					v = s.Deltas[i]
				}
				fmt.Fprintf(&buf, ",%d", v)
			}
			buf.WriteByte('\n')
		}
		k.FS().Append(c.logPath(), buf.Bytes())
		if c.LogWriter != nil {
			c.LogWriter.Write(buf.Bytes())
		}
		return nil
	}}
}

// logPath returns the effective CSV log location.
func (c *Controller) logPath() string {
	if c.LogPath != "" {
		return c.LogPath
	}
	return DefaultLogPath
}

// ioctlOp wraps a module ioctl in a syscall op.
func ioctlOp(name string, cmd uint32, arg any) kernel.Op {
	return kernel.OpSyscall{Name: name, Fn: func(k *kernel.Kernel, p *kernel.Process) any {
		res, err := k.Ioctl(p, DeviceName, cmd, arg)
		if err != nil {
			return err
		}
		return res
	}}
}
