// Package kleb implements K-LEB (Kernel — Lineage of Event Behavior), the
// paper's primary contribution: a kernel-module-based performance counter
// monitor producing precise, non-intrusive, low-overhead periodic samples.
//
// The design follows the paper's Figures 1–3:
//
//   - a kernel module owns the PMU for the monitored process: kprobes on
//     the context-switch handler enable counting and start an in-kernel
//     high-resolution timer when the process is scheduled in, and disable
//     both when it is scheduled out, isolating its counts;
//   - fork and exit probes extend tracking to the process's lineage;
//   - the HRTimer handler reads the counters every period and appends the
//     deltas to a ring buffer in kernel memory; a full buffer pauses
//     collection until the controller frees space (the safety mechanism);
//   - a user-space controller process configures the module over ioctl,
//     drains the buffer at its natural scheduling cadence, and logs the
//     samples — keeping per-sample cost off the monitored process's back.
package kleb

import (
	"fmt"

	"kleb/internal/fault"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/pmu"
)

// DeviceName is the module's character device ("/dev/kleb").
const DeviceName = "kleb"

// Ioctl commands understood by the module.
const (
	// CmdConfig installs a ModuleConfig (events, period, target PID).
	CmdConfig uint32 = iota + 1
	// CmdStart begins tracking the configured PID.
	CmdStart
	// CmdStop ends collection, flushing a final partial sample.
	CmdStop
	// CmdRead drains up to ReadMax buffered samples.
	CmdRead
	// CmdStatus returns a Status snapshot.
	CmdStatus
)

// DefaultBufferSamples is the ring capacity when the config leaves it zero.
const DefaultBufferSamples = 8192

// MinRecommendedPeriod is the 100µs floor the paper recommends for the
// HRTimer; faster periods work but drown in interrupt jitter (§VI).
const MinRecommendedPeriod = 100 * ktime.Microsecond

// ModuleConfig is the collection configuration passed via CmdConfig.
type ModuleConfig struct {
	// Events to collect; at most pmu.NumProgrammable non-fixed events.
	Events []isa.Event
	// Period is the HRTimer sampling interval.
	Period ktime.Duration
	// Target is the initial PID to track; children are added automatically.
	Target kernel.PID
	// ExcludeKernel counts only user-mode execution when set.
	ExcludeKernel bool
	// BufferSamples sizes the kernel ring buffer (0 = default).
	BufferSamples int
}

// Status is the CmdStatus reply.
type Status struct {
	// Running reports whether collection has been started and not stopped.
	Running bool
	// Done reports that every tracked process has exited.
	Done bool
	// Available is the number of buffered samples awaiting a read.
	Available int
	// Paused reports the buffer-full safety stop is in effect.
	Paused bool
	// Dropped counts sampling periods lost to the buffer-full safety pause:
	// while paused the counters are gated off but the period clock keeps
	// running, and every elapsed period is one dropped sample.
	Dropped uint64
	// Samples counts all samples ever captured.
	Samples uint64
}

// ReadRequest is the CmdRead argument.
type ReadRequest struct {
	// Max bounds how many samples to drain in this call.
	Max int
}

// Module is the K-LEB kernel module.
//
//klebvet:ledger fires = captured + dropped + lostFault
type Module struct {
	k   *kernel.Kernel
	cfg ModuleConfig

	// Counter plan derived from cfg: one placement per cfg.Events position,
	// produced by the PMU's constraint scheduler. K-LEB accepts only
	// single-round (non-multiplexed) schedules, so the plan is static for
	// the whole run.
	slots   []counterSlot
	uncMask uint64      // MSR_UNC_PERF_GLOBAL_CTRL enable mask (0 = no uncore events)
	evOrder []isa.Event // cfg.Events order for sample columns

	tracked map[kernel.PID]bool

	running bool
	paused  bool
	done    bool
	timer   *kernel.HRTimer
	// timerStore is the timer's backing storage and timerFn the handler
	// bound once at Init, so the switch probe re-arms with zero
	// allocations (a method-value bind per switch-in would allocate).
	timerStore kernel.HRTimer
	timerFn    kernel.HRTimerFn
	buf        *ring
	last       []uint64 // per-cfg.Events counter snapshot
	fires      uint64   // timer-handler invocations while running
	dropped    uint64   // periods lost to the buffer-full safety pause
	lostFault  uint64   // periods lost to injected faults
	captured   uint64

	// Interrupt-handler scratch, sized at configure time so the hot path
	// never allocates (enforced by TestCaptureSampleNoAlloc).
	scratchCur, scratchDelta []uint64

	switchProbe, forkProbe, exitProbe kernel.ProbeID
}

// Accounting is the module's period-conservation ledger. Every timer-handler
// invocation while the module runs ends in exactly one bucket, so
// Fires == Captured + Dropped + LostFault always holds — the invariant the
// chaos sweep asserts across fault plans.
//
//klebvet:ledger Fires = Captured + Dropped + LostFault
type Accounting struct {
	// Fires counts HRTimer handler invocations (plus final flushes that
	// produced or attempted a sample).
	Fires uint64
	// Captured counts samples pushed into the ring.
	Captured uint64
	// Dropped counts periods lost to the buffer-full safety pause.
	Dropped uint64
	// LostFault counts periods lost to injected faults (timer misfires,
	// corrupted counter reads, a full ring at final flush).
	LostFault uint64
	// Buffered is the number of samples still in the ring, not yet drained.
	Buffered int
}

// Accounting returns the module's current ledger.
func (m *Module) Accounting() Accounting {
	return Accounting{
		Fires:     m.fires,
		Captured:  m.captured,
		Dropped:   m.dropped,
		LostFault: m.lostFault,
		Buffered:  m.buflen(),
	}
}

var _ kernel.Module = (*Module)(nil)

// NewModule returns an unloaded module instance.
func NewModule() *Module { return &Module{} }

// ModuleName implements kernel.Module.
func (m *Module) ModuleName() string { return "k_leb" }

// Init implements kernel.Module: register the device and attach kprobes to
// the scheduler's switch path and to fork/exit.
func (m *Module) Init(k *kernel.Kernel) error {
	m.k = k
	if err := k.RegisterDevice(DeviceName, m.ioctl); err != nil {
		return err
	}
	m.switchProbe = k.RegisterSwitchProbe(m.onSwitch)
	m.forkProbe = k.RegisterForkProbe(m.onFork)
	m.exitProbe = k.RegisterExitProbe(m.onExit)
	m.timerFn = m.onTimer
	m.tracked = make(map[kernel.PID]bool)
	return nil
}

// Exit implements kernel.Module.
func (m *Module) Exit(k *kernel.Kernel) {
	m.stop()
	k.UnregisterSwitchProbe(m.switchProbe)
	k.UnregisterForkProbe(m.forkProbe)
	k.UnregisterExitProbe(m.exitProbe)
	k.UnregisterDevice(DeviceName)
}

// ioctl is the controller-facing command interface.
func (m *Module) ioctl(k *kernel.Kernel, p *kernel.Process, cmd uint32, arg any) (any, error) {
	switch cmd {
	case CmdConfig:
		cfg, ok := arg.(ModuleConfig)
		if !ok {
			return nil, fmt.Errorf("kleb: CmdConfig needs a ModuleConfig, got %T", arg)
		}
		return nil, m.configure(cfg)
	case CmdStart:
		return nil, m.start()
	case CmdStop:
		m.stop()
		return nil, nil
	case CmdRead:
		req, ok := arg.(ReadRequest)
		if !ok {
			return nil, fmt.Errorf("kleb: CmdRead needs a ReadRequest, got %T", arg)
		}
		return m.read(req.Max), nil
	case CmdStatus:
		return Status{
			Running:   m.running,
			Done:      m.done,
			Available: m.buflen(),
			Paused:    m.paused,
			Dropped:   m.dropped,
			Samples:   m.captured,
		}, nil
	}
	return nil, fmt.Errorf("kleb: unknown ioctl %d", cmd)
}

func (m *Module) buflen() int {
	if m.buf == nil {
		return 0
	}
	return m.buf.len()
}

// counterSlot is one event's static placement: which counter pool and which
// counter within it.
type counterSlot struct {
	class pmu.CounterClass
	ctr   int
}

// configure validates and installs the collection plan.
func (m *Module) configure(cfg ModuleConfig) error {
	if m.running {
		return fmt.Errorf("kleb: cannot reconfigure while running")
	}
	if len(cfg.Events) == 0 {
		return fmt.Errorf("kleb: no events configured")
	}
	if cfg.Period == 0 {
		return fmt.Errorf("kleb: zero period")
	}
	table := m.k.Core().PMU().Table()
	nProg := 0
	for _, ev := range cfg.Events {
		if pmu.FixedIndexFor(ev) >= 0 {
			continue
		}
		d, ok := table.DescFor(ev)
		if !ok {
			return fmt.Errorf("kleb: event %v not available on this machine", ev)
		}
		if d.Unit == pmu.UnitCore {
			nProg++
		}
	}
	if nProg > pmu.NumProgrammable {
		return fmt.Errorf("kleb: %d programmable events requested, hardware has %d counters",
			nProg, pmu.NumProgrammable)
	}
	sched, err := table.Schedule(cfg.Events)
	if err != nil {
		return fmt.Errorf("kleb: %w", err)
	}
	if sched.Multiplexed() {
		// The counts fit counter-by-counter but not simultaneously (counter
		// constraints or an oversubscribed uncore pool). perf would rotate;
		// K-LEB refuses — its samples are exact by construction.
		return fmt.Errorf("kleb: %d events cannot all be counted simultaneously under this PMU's counter constraints; K-LEB does not multiplex",
			len(cfg.Events))
	}
	if _, ok := m.k.Process(cfg.Target); !ok {
		return fmt.Errorf("kleb: target pid %d does not exist", cfg.Target)
	}
	m.cfg = cfg
	m.slots = make([]counterSlot, len(cfg.Events))
	m.uncMask = 0
	for _, a := range sched.Rounds[0] {
		m.slots[a.Index] = counterSlot{class: a.Class, ctr: a.Counter}
		if a.Class == pmu.CtrUncore {
			m.uncMask |= 1 << uint(a.Counter)
		}
	}
	m.evOrder = append([]isa.Event(nil), cfg.Events...)
	m.buf = newRing(cfg.BufferSamples, len(cfg.Events))
	m.last = make([]uint64, len(cfg.Events))
	m.scratchCur = make([]uint64, len(cfg.Events))
	m.scratchDelta = make([]uint64, len(cfg.Events))
	m.fires, m.dropped, m.lostFault, m.captured = 0, 0, 0, 0
	m.paused, m.done = false, false
	return nil
}

// start begins tracking the target lineage and programs the counters.
func (m *Module) start() error {
	if m.buf == nil {
		return fmt.Errorf("kleb: start before configure")
	}
	if m.running {
		return fmt.Errorf("kleb: already running")
	}
	target, ok := m.k.Process(m.cfg.Target)
	if !ok || target.Exited() {
		return fmt.Errorf("kleb: target pid %d not alive", m.cfg.Target)
	}
	m.tracked = map[kernel.PID]bool{m.cfg.Target: true}
	m.running = true
	m.done = false
	m.programCounters()
	// The controller is running right now, so the target is scheduled out;
	// counting begins at its next switch-in.
	return nil
}

// programCounters writes the event selections and zeroes all counters.
// Called once at start; per-switch gating only toggles the global enables.
func (m *Module) programCounters() {
	p := m.k.Core().PMU()
	table := p.Table()
	flags := uint64(pmu.SelUsr)
	if !m.cfg.ExcludeKernel {
		flags |= pmu.SelOS
	}
	var fixedCtrl uint64
	for i, ev := range m.evOrder {
		s := m.slots[i]
		switch s.class {
		case pmu.CtrProgrammable:
			enc, _ := table.EncodingFor(ev)
			m.wrmsr(pmu.MSRPerfEvtSel0+uint32(s.ctr), enc.Sel(flags|pmu.SelEn))
			m.wrmsr(pmu.MSRPmc0+uint32(s.ctr), 0)
		case pmu.CtrFixed:
			nib := uint64(pmu.FixedUsr)
			if !m.cfg.ExcludeKernel {
				nib |= pmu.FixedOS
			}
			fixedCtrl |= nib << uint(4*s.ctr)
			m.wrmsr(pmu.MSRFixedCtr0+uint32(s.ctr), 0)
		case pmu.CtrUncore:
			// Uncore counters have no privilege filter: they observe
			// socket-wide traffic whoever runs.
			enc, _ := table.EncodingFor(ev)
			m.wrmsr(pmu.MSRUncEvtSel0+uint32(s.ctr), enc.Sel(uint64(pmu.SelEn)))
			m.wrmsr(pmu.MSRUncPmc0+uint32(s.ctr), 0)
		}
	}
	m.wrmsr(pmu.MSRFixedCtrCtrl, fixedCtrl)
	m.wrmsr(pmu.MSRGlobalCtrl, 0) // gated off until the target runs
	if m.uncMask != 0 {
		m.wrmsr(pmu.MSRUncGlobalCtrl, 0)
	}
	for i := range m.last {
		m.last[i] = 0
	}
}

// globalEnableMask covers exactly the core counters the plan uses.
func (m *Module) globalEnableMask() uint64 {
	var mask uint64
	for _, s := range m.slots {
		switch s.class {
		case pmu.CtrProgrammable:
			mask |= 1 << uint(s.ctr)
		case pmu.CtrFixed:
			mask |= 1 << uint(32+s.ctr)
		}
	}
	return mask
}

// onSwitch is the kprobe on the scheduler's context-switch handler: gate
// counting and the sampling timer on whether a tracked process runs next.
//
//klebvet:hotpath
func (m *Module) onSwitch(k *kernel.Kernel, prev, next *kernel.Process) {
	if !m.running {
		return
	}
	if prev != nil && m.tracked[prev.PID()] {
		m.wrmsr(pmu.MSRGlobalCtrl, 0)
		if m.uncMask != 0 {
			m.wrmsr(pmu.MSRUncGlobalCtrl, 0)
		}
		if m.timer != nil {
			k.CancelHRTimer(m.timer)
			m.timer = nil
		}
	}
	if next != nil && m.tracked[next.PID()] {
		if !m.paused {
			m.wrmsr(pmu.MSRGlobalCtrl, m.globalEnableMask())
			if m.uncMask != 0 {
				m.wrmsr(pmu.MSRUncGlobalCtrl, m.uncMask)
			}
		}
		// The timer is armed even while paused so elapsed periods keep being
		// counted as dropped (period accounting, not just a pause flag). The
		// m.timer == nil guard prevents double-arming when the probe fires
		// for a tracked→tracked switch.
		if m.timer == nil {
			k.ArmHRTimer(&m.timerStore, m.cfg.Period, m.cfg.Period, m.timerFn)
			m.timer = &m.timerStore
		}
	}
}

// onFork extends tracking to children of tracked processes — the "lineage"
// in K-LEB's name.
func (m *Module) onFork(k *kernel.Kernel, parent, child *kernel.Process) {
	if !m.running || parent == nil || child == nil {
		return
	}
	if m.tracked[parent.PID()] {
		m.tracked[child.PID()] = true
	}
}

// onExit prunes exited processes; when the whole lineage is gone, a final
// partial sample is flushed and the module marks itself done.
func (m *Module) onExit(k *kernel.Kernel, p *kernel.Process) {
	if !m.running || !m.tracked[p.PID()] {
		return
	}
	delete(m.tracked, p.PID())
	if len(m.tracked) == 0 {
		m.finalFlush()
		m.running = false
		m.done = true
		if m.timer != nil {
			k.CancelHRTimer(m.timer)
			m.timer = nil
		}
		m.wrmsr(pmu.MSRGlobalCtrl, 0)
		if m.uncMask != 0 {
			m.wrmsr(pmu.MSRUncGlobalCtrl, 0)
		}
	}
}

// onTimer is the HRTimer handler: every invocation while running is one
// sampling period, accounted to exactly one of captured / dropped /
// lost-to-fault so the ledger stays balanced under any fault plan.
//
//klebvet:hotpath
func (m *Module) onTimer(k *kernel.Kernel, t *kernel.HRTimer) bool {
	if !m.running {
		return false
	}
	m.fires++
	if m.paused {
		// Accounting mode: the counters are gated off but the timer keeps
		// firing so each elapsed period is counted as dropped, turning the
		// pause flag into a measure of how much data the safety mechanism
		// cost.
		m.dropped++
		return true
	}
	if k.Faults().TimerMisfire() {
		m.lostFault++
		k.Telemetry().FaultInjected(k.Now(), fault.KindTimerMisfire)
		return true
	}
	switch m.captureSample(false) {
	case capCorrupt:
		m.lostFault++
	case capFull:
		// Buffer full: engage the safety mechanism. Counting stops until
		// the controller drains the buffer; the timer stays armed to keep
		// the period ledger running.
		m.paused = true
		m.dropped++
		m.wrmsr(pmu.MSRGlobalCtrl, 0)
		if m.uncMask != 0 {
			m.wrmsr(pmu.MSRUncGlobalCtrl, 0)
		}
		k.Telemetry().BufferPause(k.Now(), m.dropped)
	}
	return true
}

// capResult classifies one captureSample attempt.
type capResult int

const (
	// capPushed: a sample landed in the ring.
	capPushed capResult = iota
	// capSkipped: nothing to record (all-zero final flush, or unconfigured).
	capSkipped
	// capCorrupt: a counter read failed the plausibility screen; the sample
	// was discarded and the last-snapshot left untouched, so the true counts
	// surface in the next period's delta.
	capCorrupt
	// capFull: the ring had no space.
	capFull
)

// captureSample reads all planned counters into preallocated scratch and
// appends one delta sample. When final is set, an all-zero delta is
// suppressed. The hot path allocates nothing: push copies the scratch into
// the ring's slab.
//
//klebvet:hotpath
func (m *Module) captureSample(final bool) capResult {
	if m.buf == nil {
		return capSkipped
	}
	cur, deltas := m.scratchCur, m.scratchDelta
	for i := range m.evOrder {
		switch s := m.slots[i]; s.class {
		case pmu.CtrFixed:
			cur[i] = m.rdmsr(pmu.MSRFixedCtr0 + uint32(s.ctr))
		case pmu.CtrUncore:
			cur[i] = m.rdmsr(pmu.MSRUncPmc0 + uint32(s.ctr))
		default:
			cur[i] = m.rdmsr(pmu.MSRPmc0 + uint32(s.ctr))
		}
		if v, bad := m.k.Faults().CorruptRead(cur[i]); bad {
			cur[i] = v
			m.k.Telemetry().FaultInjected(m.k.Now(), fault.KindReadCorrupt)
		}
		deltas[i] = (cur[i] - m.last[i]) & pmu.CounterMask()
	}
	// Plausibility screen: a delta this large cannot come from one sampling
	// period on real hardware, so the sample is a corrupted read. Discard it
	// without advancing m.last — the genuine counts land in the next delta.
	for _, d := range deltas {
		if d >= fault.ImplausibleDelta {
			return capCorrupt
		}
	}
	if final {
		allZero := true
		for _, d := range deltas {
			if d != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return capSkipped
		}
	}
	// The per-sample store into the kernel buffer.
	m.k.ChargeKernel(300 * ktime.Nanosecond)
	if !m.buf.push(m.k.Now(), deltas) {
		return capFull
	}
	copy(m.last, cur)
	m.captured++
	m.k.Telemetry().SampleCaptured(m.k.Now(), m.buf.len(), len(m.buf.buf))
	return capPushed
}

// finalFlush captures the trailing partial sample at lineage exit or stop,
// keeping the period ledger balanced: a flush that produced (or attempted)
// a sample counts as one more fire in the matching bucket.
func (m *Module) finalFlush() {
	switch m.captureSample(true) {
	case capPushed:
		m.fires++
	case capCorrupt:
		m.fires++
		m.lostFault++
	case capFull:
		m.fires++
		m.dropped++
	}
}

// read drains up to max samples (CmdRead). Copying to user space costs
// CopyPerSample each. Draining below half capacity lifts a safety pause.
func (m *Module) read(max int) []monitor.Sample {
	if m.buf == nil {
		return nil
	}
	if max <= 0 {
		max = m.buf.len()
	}
	if m.k.Faults().StarveDrain() {
		// Injected drain starvation: the read returns empty as if the
		// buffer copy raced collection. The samples stay buffered; only
		// this drain's yield is lost.
		m.k.Telemetry().FaultInjected(m.k.Now(), fault.KindDrainStarve)
		return nil
	}
	out := m.buf.popN(max)
	m.k.ChargeKernel(ktime.Duration(len(out)) * m.k.Costs().CopyPerSample)
	m.k.Telemetry().BufferDrain(m.k.Now(), len(out), m.buf.len())
	if m.paused && m.buf.free() >= len(m.buf.buf)/2 {
		m.paused = false
		// If a tracked process is running right now, resume immediately;
		// otherwise the next switch-in re-enables collection.
		// (The controller holds the CPU during this ioctl, so in practice
		// resumption happens at the target's next switch-in.)
	}
	return out
}

// stop ends collection (CmdStop).
func (m *Module) stop() {
	if m.buf == nil {
		return
	}
	if m.running {
		m.finalFlush()
	}
	m.running = false
	if m.timer != nil {
		m.k.CancelHRTimer(m.timer)
		m.timer = nil
	}
	m.wrmsr(pmu.MSRGlobalCtrl, 0)
	if m.uncMask != 0 {
		m.wrmsr(pmu.MSRUncGlobalCtrl, 0)
	}
}

func (m *Module) wrmsr(addr uint32, val uint64) {
	m.k.ChargeKernel(m.k.Costs().MSRAccess)
	if err := m.k.Core().PMU().WriteMSR(addr, val); err != nil {
		panic(err)
	}
}

func (m *Module) rdmsr(addr uint32) uint64 {
	m.k.ChargeKernel(m.k.Costs().MSRAccess)
	v, err := m.k.Core().PMU().ReadMSR(addr)
	if err != nil {
		panic(err)
	}
	return v
}
