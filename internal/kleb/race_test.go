//go:build race

package kleb

// raceEnabled reports whether the race detector is active; allocation-count
// tests skip under it because the detector's instrumentation allocates.
const raceEnabled = true
