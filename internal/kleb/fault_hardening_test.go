package kleb

import (
	"errors"
	"strings"
	"testing"

	"kleb/internal/fault"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/pmu"
	"kleb/internal/session"
	"kleb/internal/telemetry"
	"kleb/internal/workload"
)

// runFaulted runs the full K-LEB stack under a fault plan. The 5s limit is a
// runaway guard: a controller that polls forever (the bug class this file
// regresses against) would otherwise hang the test binary.
func runFaulted(t *testing.T, seed uint64, script workload.Script, cfg monitor.Config, plan *fault.Plan, tweak func(*Tool)) (*session.Result, *Tool) {
	t.Helper()
	tool := New()
	if tweak != nil {
		tweak(tool)
	}
	res, err := session.Run(session.Spec{
		Profile:   quietProfile(),
		Seed:      seed,
		NewTarget: func() kernel.Program { return script.Program() },
		NewTool:   session.Use(tool),
		Config:    cfg,
		Faults:    plan,
		Limit:     5 * ktime.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, tool
}

// checkLedger asserts the module's period-conservation invariant: every
// timer fire landed in exactly one bucket, and every captured sample is
// either drained or still buffered.
func checkLedger(t *testing.T, tool *Tool, drained int) {
	t.Helper()
	a := tool.Accounting()
	if a.Fires != a.Captured+a.Dropped+a.LostFault {
		t.Errorf("ledger unbalanced: fires %d != captured %d + dropped %d + lost-fault %d",
			a.Fires, a.Captured, a.Dropped, a.LostFault)
	}
	if uint64(drained)+uint64(a.Buffered) != a.Captured {
		t.Errorf("samples leaked: drained %d + buffered %d != captured %d",
			drained, a.Buffered, a.Captured)
	}
}

func TestControllerRetriesTransientIoctl(t *testing.T) {
	// The first two ioctls (CONFIG and its first retry) fail transiently;
	// the controller must retry with backoff and finish the run clean.
	plan := fault.NewPlan(60)
	plan.IoctlFailFirst = 2
	script := targetScript(100_000_000)
	res, tool := runFaulted(t, 60, script, stdConfig(ktime.Millisecond), plan, nil)
	if got := tool.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2 (one per injected transient failure)", got)
	}
	if res.Result.Degraded || res.Result.Fault != "" {
		t.Errorf("transient failures within the retry budget must not degrade the run: degraded=%v fault=%q",
			res.Result.Degraded, res.Result.Fault)
	}
	if !tool.ControllerExited() {
		t.Error("controller did not exit")
	}
	if len(res.Result.Samples) == 0 {
		t.Error("no samples collected after recovering from transient faults")
	}
	// The retry backoff delays START, so the target's first few ms run
	// unmonitored: totals are a prefix, never an overcount.
	if got := res.Result.Totals[isa.EvInstructions]; got == 0 || got > script.TotalInstr() {
		t.Errorf("totals after retry: %d, want in (0, %d]", got, script.TotalInstr())
	}
	checkLedger(t, tool, len(res.Result.Samples))
}

func TestControllerAbortsOnPermanentIoctl(t *testing.T) {
	// Every ioctl after the first fails permanently (module died): the
	// controller must abort immediately — no retry budget for permanent
	// errors — and record the failing op.
	plan := fault.NewPlan(61)
	plan.IoctlDeadAfter = 1
	res, tool := runFaulted(t, 61, targetScript(50_000_000), stdConfig(ktime.Millisecond), plan, nil)
	if !tool.ControllerExited() {
		t.Fatal("controller did not exit on a permanently dead module")
	}
	if !res.Result.Degraded {
		t.Error("aborted run not marked degraded")
	}
	if !strings.Contains(res.Result.Fault, "KLEB_START") {
		t.Errorf("fault should name the failing op, got %q", res.Result.Fault)
	}
	if got := tool.Retries(); got != 0 {
		t.Errorf("permanent failure consumed %d retries, want 0", got)
	}
	if len(res.Result.Samples) != 0 {
		t.Errorf("collection never started, yet %d samples surfaced", len(res.Result.Samples))
	}
}

func TestControllerAbortsAfterStatusFailures(t *testing.T) {
	// Only KLEB_STATUS fails, always, transiently. Status is the liveness
	// probe, so the controller must give up after maxStatusFailures attempts
	// instead of retrying a blind module forever.
	plan := fault.NewPlan(62)
	plan.OnlyCmd = CmdStatus
	plan.PIoctl = 1
	res, tool := runFaulted(t, 62, targetScript(100_000_000), stdConfig(ktime.Millisecond), plan, nil)
	if !tool.ControllerExited() {
		t.Fatal("controller did not exit with status permanently failing")
	}
	if !strings.Contains(res.Result.Fault, "KLEB_STATUS") {
		t.Errorf("fault should blame KLEB_STATUS, got %q", res.Result.Fault)
	}
	if got := tool.Retries(); got != maxStatusFailures-1 {
		t.Errorf("Retries = %d, want %d (failures before the bounded abort)", got, maxStatusFailures-1)
	}
	checkLedger(t, tool, len(res.Result.Samples))
}

func TestStarvedFinalDrainIsBounded(t *testing.T) {
	// Every drain starves (returns empty with samples buffered). The module
	// finishes and reports samples available; the old controller would spin
	// on READ forever. The hardened one bounds the futile-drain loop.
	plan := fault.NewPlan(63)
	plan.PStarve = 1
	res, tool := runFaulted(t, 63, targetScript(100_000_000), stdConfig(ktime.Millisecond), plan, nil)
	if !tool.ControllerExited() {
		t.Fatal("controller never exited: the final-drain loop is unbounded again")
	}
	if !strings.Contains(res.Result.Fault, "consecutive drains") {
		t.Errorf("fault should report drain starvation, got %q", res.Result.Fault)
	}
	if !res.Result.Degraded {
		t.Error("starved run not marked degraded")
	}
	if len(res.Result.Samples) != 0 {
		t.Errorf("every drain starved, yet %d samples drained", len(res.Result.Samples))
	}
	a := tool.Accounting()
	if a.Buffered != int(a.Captured) || a.Captured == 0 {
		t.Errorf("undrained samples must stay buffered: buffered %d, captured %d", a.Buffered, a.Captured)
	}
	checkLedger(t, tool, 0)
}

func TestControllerSurvivesModuleUnload(t *testing.T) {
	// The module is ripped out (rmmod) 30ms into a ~90ms run: subsequent
	// ioctls hit a missing device. The controller must abort with partial
	// data rather than hang, and the ledger must still balance.
	plan := fault.NewPlan(64)
	plan.Unload = 30 * ktime.Millisecond
	script := targetScript(400_000_000)
	res, tool := runFaulted(t, 64, script, stdConfig(100*ktime.Microsecond), plan, func(tl *Tool) {
		tl.DrainInterval = 10 * ktime.Millisecond
	})
	if !tool.ControllerExited() {
		t.Fatal("controller did not exit after the module vanished")
	}
	if !res.Result.Degraded || res.Result.Fault == "" {
		t.Errorf("unload must degrade the run: degraded=%v fault=%q", res.Result.Degraded, res.Result.Fault)
	}
	if len(res.Result.Samples) == 0 {
		t.Error("drains before the unload should have yielded samples")
	}
	if got := res.Result.Totals[isa.EvInstructions]; got == 0 || got >= script.TotalInstr() {
		t.Errorf("partial data should be a strict prefix: %d of %d", got, script.TotalInstr())
	}
	checkLedger(t, tool, len(res.Result.Samples))
}

func TestWriteFailuresDegradeButKeepSamples(t *testing.T) {
	// Every filesystem append fails. Log writes are best-effort: the run
	// must complete with all samples in memory, marked degraded, with the
	// write fault recorded — and nothing in the simulated FS.
	plan := fault.NewPlan(65)
	plan.PFSWrite = 1
	script := targetScript(100_000_000)
	res, tool := runFaulted(t, 65, script, stdConfig(ktime.Millisecond), plan, nil)
	if !tool.ControllerExited() {
		t.Fatal("controller did not exit")
	}
	if !res.Result.Degraded {
		t.Error("write failures must mark the run degraded")
	}
	if !strings.Contains(res.Result.Fault, "fault: write") {
		t.Errorf("fault should record the write error, got %q", res.Result.Fault)
	}
	if got := res.Result.Totals[isa.EvInstructions]; got != script.TotalInstr() {
		t.Errorf("samples must survive log failures: totals %d, want %d", got, script.TotalInstr())
	}
	if _, ok := res.Machine.Kernel().FS().ReadFile(DefaultLogPath); ok {
		t.Error("every append failed, yet the log file exists")
	}
	checkLedger(t, tool, len(res.Result.Samples))
}

// errWriter always fails, modelling a full or closed log sink.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("log sink full") }

func TestLogWriterFailureDegrades(t *testing.T) {
	// No fault plan at all: a failing user-supplied LogWriter alone must be
	// recorded instead of silently swallowed (the old writeOp bug).
	script := targetScript(100_000_000)
	res, tool := runFaulted(t, 66, script, stdConfig(ktime.Millisecond), nil, func(tl *Tool) {
		tl.LogWriter = errWriter{}
	})
	if !res.Result.Degraded {
		t.Error("LogWriter failures must mark the run degraded")
	}
	if !strings.Contains(res.Result.Fault, "log sink full") {
		t.Errorf("fault should surface the writer's error, got %q", res.Result.Fault)
	}
	if got := res.Result.Totals[isa.EvInstructions]; got != script.TotalInstr() {
		t.Errorf("samples must survive a dead LogWriter: totals %d, want %d", got, script.TotalInstr())
	}
	_ = tool
}

func TestDroppedCountsElapsedPeriods(t *testing.T) {
	// Dropped must count sampling periods lost while paused, not pause
	// engagements: a 64-sample ring at 100µs with 50ms drains pauses a
	// handful of times but loses hundreds of periods per pause.
	sink := telemetry.MetricsOnly()
	tool := New()
	tool.BufferSamples = 64
	tool.DrainInterval = 50 * ktime.Millisecond
	res, err := session.Run(session.Spec{
		Profile:   quietProfile(),
		Seed:      5,
		NewTarget: func() kernel.Program { return targetScript(400_000_000).Program() },
		NewTool:   session.Use(tool),
		Config:    stdConfig(100 * ktime.Microsecond),
		Telemetry: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	pauses := sink.Registry().RingPauses.Value()
	if pauses == 0 {
		t.Fatal("scenario did not engage the safety pause")
	}
	if res.Result.Dropped <= pauses {
		t.Errorf("Dropped = %d, pauses = %d: Dropped should count elapsed periods, not pause events",
			res.Result.Dropped, pauses)
	}
	checkLedger(t, tool, len(res.Result.Samples))
}

func TestOnSwitchNoDoubleArm(t *testing.T) {
	// A spurious switch-in for an already-tracked process must not arm a
	// second HRTimer (which would double the sampling rate and leak the
	// first timer), and a paused switch-in must arm the accounting timer
	// while leaving the counters gated off.
	m := machine.Boot(quietProfile(), 67)
	k := m.Kernel()
	mod := NewModule()
	if err := k.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	target := k.Spawn("t", targetScript(1000).Program())
	cfg := ModuleConfig{
		Events: []isa.Event{isa.EvInstructions},
		Period: ktime.Millisecond,
		Target: target.PID(),
	}
	if err := mod.configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := mod.start(); err != nil {
		t.Fatal(err)
	}
	mod.onSwitch(k, nil, target)
	first := mod.timer
	if first == nil {
		t.Fatal("switch-in did not arm the sampling timer")
	}
	mod.onSwitch(k, nil, target)
	if mod.timer != first {
		t.Error("repeated switch-in double-armed the sampling timer")
	}
	mod.onSwitch(k, target, nil)
	if mod.timer != nil {
		t.Fatal("switch-out did not cancel the timer")
	}
	mod.paused = true
	mod.onSwitch(k, nil, target)
	if mod.timer == nil {
		t.Error("paused switch-in must still arm the timer (period accounting)")
	}
	if v, err := k.Core().PMU().ReadMSR(pmu.MSRGlobalCtrl); err != nil || v != 0 {
		t.Errorf("paused switch-in enabled counters: global ctrl = %d (err %v)", v, err)
	}
}

func TestCaptureSampleNoAlloc(t *testing.T) {
	// The satellite gate: the interrupt-handler capture path must not
	// allocate in steady state — scratch slices and the ring slab absorb
	// every store.
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	m := machine.Boot(quietProfile(), 68)
	k := m.Kernel()
	mod := NewModule()
	if err := k.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	target := k.Spawn("t", targetScript(1000).Program())
	cfg := ModuleConfig{
		Events: []isa.Event{isa.EvInstructions, isa.EvLoads, isa.EvLLCMisses},
		Period: 100 * ktime.Microsecond,
		Target: target.PID(),
	}
	if err := mod.configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := mod.start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mod.captureSample(false)
	}
	if avg := testing.AllocsPerRun(100, func() { mod.captureSample(false) }); avg != 0 {
		t.Errorf("captureSample allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestResultSurfacesLedger checks the period-conservation ledger reaches
// monitor.Result (Fires/Captured alongside the existing Dropped and
// LostToFault), so fleet aggregation can total it without reaching into
// *kleb.Tool. The run is fault-injected so every bucket is exercised.
func TestResultSurfacesLedger(t *testing.T) {
	plan := fault.NewPlan(61)
	plan.PMisfire = 0.05
	res, tool := runFaulted(t, 61, targetScript(50_000_000), stdConfig(ktime.Millisecond), plan, nil)
	a := tool.Accounting()
	r := res.Result
	if r.Fires != a.Fires || r.Captured != a.Captured {
		t.Errorf("Result ledger (fires %d, captured %d) disagrees with Accounting (fires %d, captured %d)",
			r.Fires, r.Captured, a.Fires, a.Captured)
	}
	if r.Fires == 0 || r.Captured == 0 {
		t.Error("ledger did not surface: zero fires/captured after a sampled run")
	}
	if r.Fires != r.Captured+r.Dropped+r.LostToFault {
		t.Errorf("Result ledger unbalanced: fires %d != captured %d + dropped %d + lost %d",
			r.Fires, r.Captured, r.Dropped, r.LostToFault)
	}
}
