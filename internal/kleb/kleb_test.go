package kleb

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

func quietProfile() machine.Profile {
	p := machine.Nehalem()
	p.Costs.NoiseRel = 0
	p.Costs.TimerJitterRel = 0
	p.Costs.RunNoiseRel = 0
	return p
}

func targetScript(instr uint64) workload.Script {
	return workload.Synthetic{
		Name:       "target",
		TotalInstr: instr,
		BlockInstr: 100_000,
		Footprint:  256 << 10,
	}.Script()
}

// runWithKLEB runs a workload under the full K-LEB stack and returns the
// collected result plus the module for post-mortem inspection.
func runWithKLEB(t *testing.T, seed uint64, script workload.Script, cfg monitor.Config, tweak func(*Tool)) (*session.Result, *Tool) {
	t.Helper()
	tool := New()
	if tweak != nil {
		tweak(tool)
	}
	res, err := session.Run(session.Spec{
		Profile:   quietProfile(),
		Seed:      seed,
		NewTarget: func() kernel.Program { return script.Program() },
		NewTool:   session.Use(tool),
		Config:    cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, tool
}

func stdConfig(period ktime.Duration) monitor.Config {
	return monitor.Config{
		Events:        []isa.Event{isa.EvInstructions, isa.EvLoads, isa.EvLLCMisses},
		Period:        period,
		ExcludeKernel: true,
	}
}

func TestTotalsAreExact(t *testing.T) {
	script := targetScript(200_000_000)
	res, _ := runWithKLEB(t, 1, script, stdConfig(ktime.Millisecond), nil)
	if got := res.Result.Totals[isa.EvInstructions]; got != script.TotalInstr() {
		t.Errorf("instructions: got %d want %d (K-LEB counts precisely, not estimates)",
			got, script.TotalInstr())
	}
	wantLoads := script.TotalInstr() * script.Phases[0].LoadsPerK / 1000
	if got := res.Result.Totals[isa.EvLoads]; got != wantLoads {
		t.Errorf("loads: got %d want %d", got, wantLoads)
	}
}

func TestSampleCadenceMatchesPeriod(t *testing.T) {
	script := targetScript(200_000_000)
	period := ktime.Millisecond
	res, _ := runWithKLEB(t, 2, script, stdConfig(period), nil)
	expected := int(res.Elapsed / period)
	got := len(res.Result.Samples)
	if got < expected*8/10 || got > expected+2 {
		t.Errorf("samples: got %d, elapsed/period = %d", got, expected)
	}
	// Timestamps strictly increase.
	for i := 1; i < len(res.Result.Samples); i++ {
		if res.Result.Samples[i].Time <= res.Result.Samples[i-1].Time {
			t.Fatal("sample timestamps not increasing")
		}
	}
}

func TestHundredMicrosecondSampling(t *testing.T) {
	// The headline claim: 100µs periodic collection works and yields ~100
	// samples for a ~10ms program — where a 10ms tool gets at most one.
	script := workload.Synthetic{
		Name: "short", TotalInstr: 30_000_000, BlockInstr: 30_000, Footprint: 64 << 10,
	}.Script()
	res, _ := runWithKLEB(t, 3, script, stdConfig(100*ktime.Microsecond), nil)
	if res.Elapsed > 20*ktime.Millisecond {
		t.Fatalf("short workload took %v", res.Elapsed)
	}
	want := int(res.Elapsed / (100 * ktime.Microsecond))
	if got := len(res.Result.Samples); got < want*7/10 {
		t.Errorf("100µs sampling: got %d samples, expected ≈%d", got, want)
	}
}

func TestLineageTracking(t *testing.T) {
	// Monitor the Docker engine; the counts must include the container
	// child's work (fork-probe lineage tracking).
	img, _ := workload.ImageByName("golang")
	tool := New()
	res, err := session.Run(session.Spec{
		Profile:   quietProfile(),
		Seed:      4,
		NewTarget: func() kernel.Program { return workload.DockerRun(img) },
		NewTool:   session.Use(tool),
		Config:    stdConfig(10 * ktime.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The engine itself retires ~4M instructions; the container's script
	// dominates. Totals must reflect the child.
	if got := res.Result.Totals[isa.EvInstructions]; got < img.Script().TotalInstr() {
		t.Errorf("lineage tracking lost the child: %d < %d", got, img.Script().TotalInstr())
	}
}

func TestBufferFullSafetyMechanism(t *testing.T) {
	// A tiny ring with a starved controller: the module must pause (not
	// overwrite), record drops, and resume after a drain — and the sum of
	// collected deltas must never exceed ground truth.
	script := targetScript(400_000_000)
	res, tool := runWithKLEB(t, 5, script, stdConfig(100*ktime.Microsecond), func(tl *Tool) {
		tl.BufferSamples = 64
		tl.DrainInterval = 50 * ktime.Millisecond
	})
	if res.Result.Dropped == 0 {
		t.Fatal("expected dropped periods with a 64-sample ring at 100µs and 50ms drains")
	}
	if len(res.Result.Samples) == 0 {
		t.Fatal("no samples collected at all")
	}
	if got := res.Result.Totals[isa.EvInstructions]; got > script.TotalInstr() {
		t.Errorf("collected more instructions than executed: %d > %d", got, script.TotalInstr())
	}
	// Collection resumed after pauses: samples span most of the run.
	last := res.Result.Samples[len(res.Result.Samples)-1].Time
	if last < res.Target.ExitTime()-ktime.Time(120*ktime.Millisecond) {
		t.Errorf("collection never resumed: last sample %v, exit %v", last, res.Target.ExitTime())
	}
	_ = tool
}

func TestIsolationFromOtherProcesses(t *testing.T) {
	// With OS noise running, K-LEB totals still match the target exactly:
	// counting is gated off whenever the target is scheduled out.
	script := targetScript(150_000_000)
	tool := New()
	res, err := session.Run(session.Spec{
		Profile:   quietProfile(),
		Seed:      6,
		NewTarget: func() kernel.Program { return script.Program() },
		NewTool:   session.Use(tool),
		Config:    stdConfig(ktime.Millisecond),
		Noise:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Result.Totals[isa.EvInstructions]; got != script.TotalInstr() {
		t.Errorf("noise leaked into counts: got %d want %d", got, script.TotalInstr())
	}
}

func TestModuleConfigValidation(t *testing.T) {
	m := machine.Boot(quietProfile(), 7)
	k := m.Kernel()
	mod := NewModule()
	if err := k.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	target := k.Spawn("t", targetScript(1000).Program())

	cases := []struct {
		name string
		cfg  ModuleConfig
		want string
	}{
		{"no-events", ModuleConfig{Period: ktime.Millisecond, Target: target.PID()}, "no events"},
		{"no-period", ModuleConfig{Events: []isa.Event{isa.EvLoads}, Target: target.PID()}, "zero period"},
		{"bad-pid", ModuleConfig{Events: []isa.Event{isa.EvLoads}, Period: ktime.Millisecond, Target: 999}, "does not exist"},
		{"too-many", ModuleConfig{
			Events: []isa.Event{isa.EvLoads, isa.EvStores, isa.EvBranches, isa.EvLLCMisses, isa.EvLLCRefs},
			Period: ktime.Millisecond, Target: target.PID(),
		}, "counters"},
	}
	for _, c := range cases {
		if err := mod.configure(c.cfg); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.want, err)
		}
	}
	// Valid config passes; fixed events don't consume programmable slots.
	ok := ModuleConfig{
		Events: []isa.Event{isa.EvInstructions, isa.EvCycles, isa.EvRefCycles,
			isa.EvLoads, isa.EvStores, isa.EvBranches, isa.EvLLCMisses},
		Period: ktime.Millisecond,
		Target: target.PID(),
	}
	if err := mod.configure(ok); err != nil {
		t.Errorf("7-event config (3 fixed + 4 programmable) should fit: %v", err)
	}
	if err := mod.start(); err != nil {
		t.Fatal(err)
	}
	if err := mod.configure(ok); err == nil {
		t.Error("reconfigure while running should fail")
	}
	if err := mod.start(); err == nil {
		t.Error("double start should fail")
	}
}

func TestModuleIoctlErrors(t *testing.T) {
	m := machine.Boot(quietProfile(), 8)
	k := m.Kernel()
	mod := NewModule()
	if err := k.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	var errs []error
	stage := 0
	k.Spawn("ctl", kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
		if stage == 0 {
			stage = 1
			return kernel.OpSyscall{Name: "ioctl", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				_, err := k.Ioctl(p, DeviceName, 999, nil)
				errs = append(errs, err)
				_, err = k.Ioctl(p, DeviceName, CmdConfig, "wrong type")
				errs = append(errs, err)
				_, err = k.Ioctl(p, DeviceName, CmdRead, 42)
				errs = append(errs, err)
				_, err = k.Ioctl(p, DeviceName, CmdStart, nil)
				errs = append(errs, err)
				return nil
			}}
		}
		return kernel.OpExit{}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("ioctl case %d should have failed", i)
		}
	}
}

func TestModuleUnloadCleansUp(t *testing.T) {
	m := machine.Boot(quietProfile(), 9)
	k := m.Kernel()
	mod := NewModule()
	if err := k.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	if err := k.UnloadModule(mod.ModuleName()); err != nil {
		t.Fatal(err)
	}
	// Device gone: a fresh module can register again.
	if err := k.LoadModule(NewModule()); err != nil {
		t.Errorf("device not released on unload: %v", err)
	}
}

func TestExcludeKernelFiltering(t *testing.T) {
	// A workload with a kernel-mode phase: USR-only counting must not see
	// its instructions; USR+OS counting must.
	script := workload.Script{Name: "mixed", Phases: []workload.Phase{
		{Name: "kern", TotalInstr: 50_000_000, BlockInstr: 100_000, LoadsPerK: 100,
			Mem:  isa.MemPattern{Base: 0x100000, Footprint: 64 << 10, Stride: 8},
			Priv: isa.Kernel},
		{Name: "user", TotalInstr: 50_000_000, BlockInstr: 100_000, LoadsPerK: 100,
			Mem:  isa.MemPattern{Base: 0x200000, Footprint: 64 << 10, Stride: 8},
			Priv: isa.User},
	}}
	resUser, _ := runWithKLEB(t, 10, script, monitor.Config{
		Events: []isa.Event{isa.EvInstructions}, Period: ktime.Millisecond, ExcludeKernel: true,
	}, nil)
	resBoth, _ := runWithKLEB(t, 10, script, monitor.Config{
		Events: []isa.Event{isa.EvInstructions}, Period: ktime.Millisecond, ExcludeKernel: false,
	}, nil)
	u := resUser.Result.Totals[isa.EvInstructions]
	if u != 50_000_000 {
		t.Errorf("user-only count %d, want exactly the user phase", u)
	}
	b := resBoth.Result.Totals[isa.EvInstructions]
	if b < 100_000_000 {
		t.Errorf("user+kernel count %d, want at least both phases", b)
	}
}

func TestFinalPartialSampleFlushed(t *testing.T) {
	// A workload whose runtime is not a period multiple: the tail between
	// the last timer fire and exit must still be counted (final flush).
	script := targetScript(100_000_000)
	res, _ := runWithKLEB(t, 11, script, stdConfig(10*ktime.Millisecond), nil)
	if got := res.Result.Totals[isa.EvInstructions]; got != script.TotalInstr() {
		t.Errorf("final partial sample missing: %d != %d", got, script.TotalInstr())
	}
}

func TestTooManyProgrammableEventsRejectedAtAttach(t *testing.T) {
	tool := New()
	err := tool.Attach(machine.Boot(quietProfile(), 12),
		nil, nil, monitor.Config{
			Events: []isa.Event{isa.EvLoads, isa.EvStores, isa.EvBranches,
				isa.EvLLCMisses, isa.EvLLCRefs},
			Period: ktime.Millisecond,
		})
	if err == nil || !strings.Contains(err.Error(), "multiplex") {
		t.Errorf("want multiplexing refusal, got %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	script := targetScript(80_000_000)
	run := func() (ktime.Duration, int) {
		res, _ := runWithKLEB(t, 13, script, stdConfig(ktime.Millisecond), nil)
		return res.Elapsed, len(res.Result.Samples)
	}
	e1, n1 := run()
	e2, n2 := run()
	if e1 != e2 || n1 != n2 {
		t.Errorf("replay diverged: (%v,%d) vs (%v,%d)", e1, n1, e2, n2)
	}
}

// --- ring buffer unit & property tests ---

func TestRingBasicFIFO(t *testing.T) {
	r := newRing(4, 1)
	for i := 0; i < 4; i++ {
		if !r.push(ktime.Time(i), []uint64{uint64(i) * 10}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.push(99, []uint64{0}) {
		t.Fatal("push into full ring succeeded")
	}
	if r.len() != 4 || r.free() != 0 {
		t.Fatalf("len=%d free=%d", r.len(), r.free())
	}
	out := r.popN(2)
	if len(out) != 2 || out[0].Time != 0 || out[1].Time != 1 {
		t.Fatalf("popN order: %v", out)
	}
	if out[0].Deltas[0] != 0 || out[1].Deltas[0] != 10 {
		t.Fatalf("popN deltas: %v", out)
	}
	if !r.push(9, []uint64{90}) {
		t.Fatal("push after drain failed")
	}
	rest := r.popN(100)
	if len(rest) != 3 || rest[2].Time != 9 || rest[2].Deltas[0] != 90 {
		t.Fatalf("wraparound order: %v", rest)
	}
	if r.popN(1) != nil {
		t.Fatal("pop from empty ring returned data")
	}
	if r.popN(0) != nil {
		t.Fatal("popN(0) should return nil")
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	if got := len(newRing(0, 1).buf); got != DefaultBufferSamples {
		t.Errorf("default capacity %d", got)
	}
}

func TestRingPopCopiesOutOfSlab(t *testing.T) {
	// popN must hand back samples that survive the slot being reused:
	// the returned deltas cannot alias the ring's backing slab.
	r := newRing(2, 2)
	scratch := []uint64{1, 2}
	if !r.push(1, scratch) {
		t.Fatal("push failed")
	}
	got := r.popN(1)
	// Refill the now-free slot with different data via the same scratch.
	scratch[0], scratch[1] = 77, 88
	if !r.push(2, scratch) {
		t.Fatal("second push failed")
	}
	if got[0].Deltas[0] != 1 || got[0].Deltas[1] != 2 {
		t.Fatalf("popped sample mutated by slot reuse: %v", got[0].Deltas)
	}
}

func TestRingFIFOProperty(t *testing.T) {
	// Any interleaving of pushes and pops preserves FIFO order and never
	// loses or duplicates accepted samples.
	prop := func(ops []uint8) bool {
		r := newRing(8, 1)
		next := uint64(0)
		wantNext := uint64(0)
		for _, op := range ops {
			if op%3 == 0 { // pop
				for _, s := range r.popN(int(op%5) + 1) {
					if uint64(s.Time) != wantNext || s.Deltas[0] != wantNext {
						return false
					}
					wantNext++
				}
			} else { // push
				if r.push(ktime.Time(next), []uint64{next}) {
					next++
				}
			}
		}
		for _, s := range r.popN(r.len()) {
			if uint64(s.Time) != wantNext || s.Deltas[0] != wantNext {
				return false
			}
			wantNext++
		}
		return wantNext == next
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestControllerLogOnFilesystem(t *testing.T) {
	// The controller logs the samples to the kernel's filesystem (the
	// paper's design point); the log must parse back to exactly the
	// collected series.
	script := targetScript(100_000_000)
	res, _ := runWithKLEB(t, 30, script, stdConfig(ktime.Millisecond), nil)

	raw, ok := res.Machine.Kernel().FS().ReadFile(DefaultLogPath)
	if !ok {
		t.Fatalf("controller log %s missing; files: %v", DefaultLogPath, res.Machine.Kernel().FS().Names())
	}
	events, samples, err := trace.ReadCSV(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Result.Events) {
		t.Fatalf("log columns %d, collected %d", len(events), len(res.Result.Events))
	}
	if len(samples) != len(res.Result.Samples) {
		t.Fatalf("log rows %d, collected samples %d", len(samples), len(res.Result.Samples))
	}
	var logInstr, memInstr uint64
	for i := range samples {
		logInstr += samples[i].Deltas[0]
		memInstr += res.Result.Samples[i].Deltas[0]
	}
	if logInstr != memInstr {
		t.Errorf("log total %d != collected total %d", logInstr, memInstr)
	}
}

// stoppingController configures, starts, waits a fixed time, then issues
// CmdStop while the target is still running — the paper's "user issues the
// stop monitoring command" path (Fig 2 step 4) — and drains what was
// collected.
type stoppingController struct {
	cfg     ModuleConfig
	stopAt  ktime.Duration
	Samples []monitor.Sample
	stage   int
}

func (c *stoppingController) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	switch c.stage {
	case 0:
		c.stage = 1
		return ioctlOp("KLEB_CONFIG", CmdConfig, c.cfg)
	case 1:
		c.stage = 2
		return ioctlOp("KLEB_START", CmdStart, nil)
	case 2:
		c.stage = 3
		return kernel.OpSleep{D: c.stopAt, HR: true}
	case 3:
		c.stage = 4
		return ioctlOp("KLEB_STOP", CmdStop, nil)
	case 4:
		c.stage = 5
		return ioctlOp("KLEB_READ", CmdRead, ReadRequest{Max: ReadMax})
	case 5:
		if got, ok := p.SyscallResult.([]monitor.Sample); ok {
			c.Samples = got
		}
		return kernel.OpExit{}
	}
	return kernel.OpExit{}
}

func TestStopWhileTargetRunning(t *testing.T) {
	m := machine.Boot(quietProfile(), 40)
	k := m.Kernel()
	mod := NewModule()
	if err := k.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	target := k.Spawn("runner", targetScript(400_000_000).Program())
	ctl := &stoppingController{
		cfg: ModuleConfig{
			Events:        []isa.Event{isa.EvInstructions},
			Period:        ktime.Millisecond,
			Target:        target.PID(),
			ExcludeKernel: true,
		},
		stopAt: 20 * ktime.Millisecond,
	}
	k.Spawn("ctl", ctl)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !target.Exited() {
		t.Fatal("target should run to completion after monitoring stops")
	}
	if len(ctl.Samples) == 0 {
		t.Fatal("no samples collected before the stop")
	}
	// Counting stopped at ~20ms: totals cover the prefix only.
	var got uint64
	for _, s := range ctl.Samples {
		got += s.Deltas[0]
	}
	if got == 0 || got >= 400_000_000 {
		t.Errorf("stopped monitoring should see a strict prefix: %d", got)
	}
	// No sample is timestamped after the stop (plus a small drain margin).
	last := ctl.Samples[len(ctl.Samples)-1].Time
	if last > ktime.Time(25*ktime.Millisecond) {
		t.Errorf("sample at %v after the stop", last)
	}
	// The module is restartable after a stop: a fresh configure succeeds.
	if err := mod.configure(ctl.cfg); err != nil {
		t.Errorf("reconfigure after stop: %v", err)
	}
}

func TestControllerAbortsOnModuleError(t *testing.T) {
	// A CONFIG rejected by the module (dead target PID) must make the
	// controller exit with an error, not poll a dead module forever.
	m := machine.Boot(quietProfile(), 41)
	k := m.Kernel()
	if err := k.LoadModule(NewModule()); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(ModuleConfig{
		Events: []isa.Event{isa.EvInstructions},
		Period: ktime.Millisecond,
		Target: 999, // no such process
	})
	proc := k.Spawn("ctl", ctl)
	if err := k.Run(ktime.Second); err != nil {
		t.Fatal(err)
	}
	if !proc.Exited() || proc.ExitCode() == 0 {
		t.Errorf("controller should exit non-zero: state=%v code=%d", proc.State(), proc.ExitCode())
	}
	if ctl.Err == nil {
		t.Error("controller did not record the module error")
	}
	if k.Now() > ktime.Time(10*ktime.Millisecond) {
		t.Errorf("abort took %v; controller lingered", k.Now())
	}
}

func TestTwoKLEBStacksOnTwoCores(t *testing.T) {
	// A full K-LEB stack (module + controller) per core of one socket,
	// monitoring independent targets concurrently: both must stay exact,
	// proving there is no cross-core monitoring state.
	cluster := machine.BootCluster(quietProfile(), 50, 2)
	scripts := [2]workload.Script{
		workload.Synthetic{Name: "t0", TotalInstr: 120_000_000, BlockInstr: 100_000, Footprint: 128 << 10}.Script(),
		workload.Synthetic{Name: "t1", TotalInstr: 90_000_000, BlockInstr: 100_000, Footprint: 128 << 10}.Script(),
	}
	var tools [2]*Tool
	for i, m := range cluster.Cores() {
		prog := scripts[i].Program()
		target := m.Kernel().SpawnStopped(scripts[i].Name, prog)
		tools[i] = New()
		if err := tools[i].Attach(m, target, prog, monitor.Config{
			Events: []isa.Event{isa.EvInstructions, isa.EvLoads},
			Period: ktime.Millisecond, ExcludeKernel: true,
		}); err != nil {
			t.Fatal(err)
		}
		m.Kernel().Resume(target)
	}
	if err := cluster.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := range tools {
		res := tools[i].Collect()
		if got := res.Totals[isa.EvInstructions]; got != scripts[i].TotalInstr() {
			t.Errorf("core %d: instructions %d want %d (cross-core leakage?)",
				i, got, scripts[i].TotalInstr())
		}
		if len(res.Samples) < 20 {
			t.Errorf("core %d: only %d samples", i, len(res.Samples))
		}
	}
}
