package kleb

import (
	"testing"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/machine"
)

// TestAttachToAlreadyRunningProcess exercises the paper's §III claim that
// distinguishes K-LEB from LiMiT: "user programs can be profiled on an
// already running kernel as K-LEB uses a kernel module" — no restart, no
// pre-arranged launch. The target runs unmonitored for a while; the module
// is insmod-ed and the controller started mid-execution; collected totals
// cover exactly the remainder.
func TestAttachToAlreadyRunningProcess(t *testing.T) {
	m := machine.Boot(quietProfile(), 21)
	k := m.Kernel()

	script := targetScript(300_000_000)
	target := k.Spawn("long-runner", script.Program())

	// Let roughly a third of the program (~106ms total) execute with
	// nothing attached.
	if err := k.RunUntil(ktime.Time(30 * ktime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if target.Exited() {
		t.Fatal("target finished too early for a live attach")
	}

	// insmod + controller, mid-flight.
	mod := NewModule()
	if err := k.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(ModuleConfig{
		Events:        []isa.Event{isa.EvInstructions, isa.EvLoads},
		Period:        ktime.Millisecond,
		Target:        target.PID(),
		ExcludeKernel: true,
	})
	k.Spawn("kleb-controller", ctl)

	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !target.Exited() {
		t.Fatal("target did not finish")
	}

	var got uint64
	for _, s := range ctl.Samples {
		got += s.Deltas[0]
	}
	total := script.TotalInstr()
	if got >= total {
		t.Fatalf("late attach cannot see the whole program: got %d of %d", got, total)
	}
	// It must cover most of the remaining two thirds (attach latency is a
	// controller scheduling delay, well under a timeslice).
	if got < total/2 {
		t.Errorf("late attach saw only %d of %d instructions", got, total)
	}
	// Samples begin after the attach instant.
	if len(ctl.Samples) == 0 || ctl.Samples[0].Time < ktime.Time(30*ktime.Millisecond) {
		t.Error("samples predate the attach")
	}
}
