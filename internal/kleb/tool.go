package kleb

import (
	"fmt"
	"io"

	"kleb/internal/fault"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
)

// Tool adapts K-LEB (module + controller) to the common monitor.Tool
// interface so the experiment harness can compare it head-to-head with the
// baselines.
type Tool struct {
	// DrainInterval overrides the controller's drain cadence (0 = default).
	DrainInterval ktime.Duration
	// BufferSamples overrides the kernel ring size (0 = default).
	BufferSamples int
	// LogPath overrides where the controller's CSV log lands in the
	// simulated filesystem ("" = kleb.DefaultLogPath).
	LogPath string
	// LogWriter, if set, additionally receives the CSV log as it is written.
	LogWriter io.Writer

	cfg     monitor.Config
	module  *Module
	ctl     *Controller
	ctlProc *kernel.Process
}

var _ monitor.Tool = (*Tool)(nil)

// New returns an unattached K-LEB tool.
func New() *Tool { return &Tool{} }

// Name implements monitor.Tool.
func (t *Tool) Name() string { return "kleb" }

// Attach loads the module into the machine's (already running) kernel and
// spawns the controller process. No access to the target's program is
// needed — K-LEB is non-intrusive by construction.
func (t *Tool) Attach(m *machine.Machine, target *kernel.Process, _ kernel.Program, cfg monitor.Config) error {
	if len(cfg.ProgrammableEvents()) > 4 {
		return fmt.Errorf("kleb: %d programmable events exceed the PMU's counters; K-LEB does not multiplex", len(cfg.ProgrammableEvents()))
	}
	// Event availability is per-microarchitecture (§VI): refuse events this
	// machine cannot encode rather than letting the module fail later.
	for _, ev := range cfg.ProgrammableEvents() {
		if _, ok := m.Core().PMU().Table().EncodingFor(ev); !ok {
			return fmt.Errorf("kleb: event %v is not available on %s", ev, m.Profile().Name)
		}
	}
	t.cfg = cfg
	t.module = NewModule()
	if err := m.Kernel().LoadModule(t.module); err != nil {
		return err
	}
	t.ctl = NewController(ModuleConfig{
		Events:        cfg.Events,
		Period:        cfg.Period,
		Target:        target.PID(),
		ExcludeKernel: cfg.ExcludeKernel,
		BufferSamples: t.BufferSamples,
	})
	if t.DrainInterval > 0 {
		t.ctl.DrainInterval = t.DrainInterval
	}
	t.ctl.LogPath = t.LogPath
	t.ctl.LogWriter = t.LogWriter
	t.ctlProc = m.Kernel().Spawn("kleb-controller", t.ctl)
	// An armed module-unload fault rips the module out mid-run (rmmod while
	// collecting): subsequent controller ioctls hit a missing device, which
	// is exactly the permanent-failure path the hardening must survive.
	if d := m.Kernel().Faults().UnloadDelay(); d > 0 {
		m.Kernel().StartHRTimer(d, 0, func(k *kernel.Kernel, _ *kernel.HRTimer) bool {
			if _, ok := k.Module(t.module.ModuleName()); ok {
				k.Telemetry().FaultInjected(k.Now(), fault.KindModuleUnload)
				// The module was just confirmed present, so the unload
				// cannot miss; a no-op failure would only mean the fault
				// fizzled.
				_ = k.UnloadModule(t.module.ModuleName())
			}
			return false
		})
	}
	return nil
}

// ControllerExited reports whether the controller process ran to an exit
// (clean or abort). Chaos runs assert this to prove the hardened controller
// terminates under every fault plan.
func (t *Tool) ControllerExited() bool {
	return t.ctlProc != nil && t.ctlProc.Exited()
}

// Retries exposes the controller's transient-retry count.
func (t *Tool) Retries() uint64 {
	if t.ctl == nil {
		return 0
	}
	return t.ctl.Retries
}

// Accounting exposes the module's period-conservation ledger.
func (t *Tool) Accounting() Accounting {
	if t.module == nil {
		return Accounting{}
	}
	return t.module.Accounting()
}

// Collect implements monitor.Tool: sample series plus exact totals (sums of
// per-period deltas including the final partial flush).
func (t *Tool) Collect() monitor.Result {
	res := monitor.Result{
		Tool:    t.Name(),
		Events:  t.cfg.Events,
		Samples: t.ctl.Samples,
		Totals:  make(map[isa.Event]uint64, len(t.cfg.Events)),
	}
	if t.module != nil {
		res.RecordLedger(t.module.fires, t.module.captured, t.module.dropped, t.module.lostFault)
	}
	if t.ctl != nil {
		res.Degraded = t.ctl.Degraded()
		if err := t.ctl.FaultError(); err != nil {
			res.Fault = err.Error()
		}
	}
	for i, ev := range t.cfg.Events {
		var sum uint64
		for _, s := range t.ctl.Samples {
			if i < len(s.Deltas) {
				sum += s.Deltas[i]
			}
		}
		res.Totals[ev] = sum
	}
	return res
}
