package kleb

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
)

// Tool adapts K-LEB (module + controller) to the common monitor.Tool
// interface so the experiment harness can compare it head-to-head with the
// baselines.
type Tool struct {
	// DrainInterval overrides the controller's drain cadence (0 = default).
	DrainInterval ktime.Duration
	// BufferSamples overrides the kernel ring size (0 = default).
	BufferSamples int
	// LogPath overrides where the controller's CSV log lands in the
	// simulated filesystem ("" = kleb.DefaultLogPath).
	LogPath string
	// LogWriter, if set, additionally receives the CSV log as it is written.
	LogWriter io.Writer

	cfg    monitor.Config
	module *Module
	ctl    *Controller
}

var _ monitor.Tool = (*Tool)(nil)

// New returns an unattached K-LEB tool.
func New() *Tool { return &Tool{} }

// Name implements monitor.Tool.
func (t *Tool) Name() string { return "kleb" }

// Attach loads the module into the machine's (already running) kernel and
// spawns the controller process. No access to the target's program is
// needed — K-LEB is non-intrusive by construction.
func (t *Tool) Attach(m *machine.Machine, target *kernel.Process, _ kernel.Program, cfg monitor.Config) error {
	if len(cfg.ProgrammableEvents()) > 4 {
		return fmt.Errorf("kleb: %d programmable events exceed the PMU's counters; K-LEB does not multiplex", len(cfg.ProgrammableEvents()))
	}
	// Event availability is per-microarchitecture (§VI): refuse events this
	// machine cannot encode rather than letting the module fail later.
	for _, ev := range cfg.ProgrammableEvents() {
		if _, ok := m.Core().PMU().Table().EncodingFor(ev); !ok {
			return fmt.Errorf("kleb: event %v is not available on %s", ev, m.Profile().Name)
		}
	}
	t.cfg = cfg
	t.module = NewModule()
	if err := m.Kernel().LoadModule(t.module); err != nil {
		return err
	}
	t.ctl = NewController(ModuleConfig{
		Events:        cfg.Events,
		Period:        cfg.Period,
		Target:        target.PID(),
		ExcludeKernel: cfg.ExcludeKernel,
		BufferSamples: t.BufferSamples,
	})
	if t.DrainInterval > 0 {
		t.ctl.DrainInterval = t.DrainInterval
	}
	t.ctl.LogPath = t.LogPath
	t.ctl.LogWriter = t.LogWriter
	m.Kernel().Spawn("kleb-controller", t.ctl)
	return nil
}

// Collect implements monitor.Tool: sample series plus exact totals (sums of
// per-period deltas including the final partial flush).
func (t *Tool) Collect() monitor.Result {
	res := monitor.Result{
		Tool:    t.Name(),
		Events:  t.cfg.Events,
		Samples: t.ctl.Samples,
		Totals:  make(map[isa.Event]uint64, len(t.cfg.Events)),
	}
	if t.module != nil {
		res.Dropped = t.module.dropped
	}
	for i, ev := range t.cfg.Events {
		var sum uint64
		for _, s := range t.ctl.Samples {
			if i < len(s.Deltas) {
				sum += s.Deltas[i]
			}
		}
		res.Totals[ev] = sum
	}
	return res
}
