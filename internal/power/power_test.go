package power

import (
	"math"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/workload"
)

var powerEvents = []isa.Event{isa.EvInstructions, isa.EvLLCMisses, isa.EvFPOps}

func mkSamples(n int, period ktime.Duration, instr, misses uint64) []monitor.Sample {
	out := make([]monitor.Sample, n)
	for i := range out {
		out[i] = monitor.Sample{
			Time:   ktime.Time(i+1) * ktime.Time(period),
			Deltas: []uint64{instr, misses, 0},
		}
	}
	return out
}

func TestEstimateArithmetic(t *testing.T) {
	m := Model{
		StaticWatts:    10,
		EnergyPerEvent: map[isa.Event]float64{isa.EvInstructions: 1.0}, // 1 nJ/instr
	}
	// 1M instructions per 1ms window: 1e6 nJ / 1e6 ns = 1 W dynamic.
	est, err := m.FromSamples(powerEvents, mkSamples(10, ktime.Millisecond, 1_000_000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.MeanWatts-11) > 1e-9 {
		t.Errorf("mean %f W, want 11", est.MeanWatts)
	}
	if math.Abs(est.PeakWatts-11) > 1e-9 {
		t.Errorf("peak %f", est.PeakWatts)
	}
	// 11W over 10ms = 0.11 J.
	if math.Abs(est.EnergyJoules-0.11) > 1e-6 {
		t.Errorf("energy %f J, want 0.11", est.EnergyJoules)
	}
	if len(est.Series) != 10 {
		t.Errorf("series %d", len(est.Series))
	}
}

func TestEstimateRejectsUnmodeledEvents(t *testing.T) {
	m := DefaultModel()
	if _, err := m.FromSamples([]isa.Event{isa.EvBranches}, nil); err == nil {
		t.Error("unmodeled event set should fail")
	}
}

func TestMemoryBoundBurnsMorePowerPerInstruction(t *testing.T) {
	m := DefaultModel()
	compute, err := m.FromSamples(powerEvents, mkSamples(20, ktime.Millisecond, 5_000_000, 100))
	if err != nil {
		t.Fatal(err)
	}
	memory, err := m.FromSamples(powerEvents, mkSamples(20, ktime.Millisecond, 1_000_000, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	// The memory-bound trace retires 5× fewer instructions but drives DRAM:
	// its energy per instruction must be far higher.
	epiC := compute.EnergyJoules / (20 * 5e6)
	epiM := memory.EnergyJoules / (20 * 1e6)
	if epiM < 2*epiC {
		t.Errorf("energy/instr: compute %.3e, memory %.3e", epiC, epiM)
	}
}

func TestPowerTraceFromKLEBRun(t *testing.T) {
	// End to end: collect a phase-structured workload at 1ms and check the
	// power trace resolves the phases (hot compute start, cooler tail).
	prof := machine.Nehalem()
	prof.Costs.NoiseRel = 0
	prof.Costs.RunNoiseRel = 0
	prof.Costs.TimerJitterRel = 0
	script := workload.Script{Name: "two-phase", Phases: []workload.Phase{
		{Name: "hot", TotalInstr: 300_000_000, BlockInstr: 200_000,
			LoadsPerK: 100, FPsPerK: 500, MulsPerK: 200,
			Mem: isa.MemPattern{Base: 0x10_0000, Footprint: 24 << 10, Stride: 8}},
		{Name: "cold", TotalInstr: 50_000_000, BlockInstr: 200_000,
			LoadsPerK: 350,
			Mem:       isa.MemPattern{Base: 0x20_0000, Footprint: 64 << 20, Stride: 8, RandomFrac: 0.4}},
	}}
	res, err := session.Run(session.Spec{
		Profile:   prof,
		Seed:      2,
		NewTarget: func() kernel.Program { return script.Program() },
		NewTool:   func() (monitor.Tool, error) { return kleb.New(), nil },
		Config:    monitor.Config{Events: powerEvents, Period: ktime.Millisecond, ExcludeKernel: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := DefaultModel().FromSamples(powerEvents, res.Result.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanWatts <= DefaultModel().StaticWatts {
		t.Errorf("mean %f W not above the static floor", est.MeanWatts)
	}
	if est.PeakWatts <= est.MeanWatts {
		t.Error("flat power trace: phases not resolved")
	}
	if est.EnergyJoules <= 0 {
		t.Error("no energy integrated")
	}
	// Both phases appear: compare first-quarter vs last-quarter mean power.
	q := len(est.Series) / 4
	var head, tail float64
	for i := 0; i < q; i++ {
		head += est.Series[i].Watts
		tail += est.Series[len(est.Series)-1-i].Watts
	}
	if head == tail {
		t.Error("power trace cannot distinguish the workload's phases")
	}
}

func TestEstimateEmptyAndDegenerate(t *testing.T) {
	m := DefaultModel()
	est, err := m.FromSamples(powerEvents, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Series) != 0 || est.EnergyJoules != 0 || est.MeanWatts != 0 {
		t.Error("empty stream should produce an empty estimate")
	}
	// A single sample has no window span: no points, no crash.
	est, err = m.FromSamples(powerEvents, mkSamples(1, ktime.Millisecond, 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Series) > 1 {
		t.Errorf("series %d from a single sample", len(est.Series))
	}
}
