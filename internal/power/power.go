// Package power estimates dynamic CPU power from hardware event samples —
// the use case the paper cites from Liu et al. ("dynamic power estimation
// with hardware performance counters support on multi-core platform",
// reference [12]): a weighted linear model over per-period event counts.
//
// Models of this family assign an energy cost to each architectural
// activity (a retired instruction, a cache miss that drives the DRAM bus, a
// floating point operation) plus a leakage/static floor, and evaluate the
// sum per sampling window. Their accuracy lives or dies on the sampling
// rate: a 10ms tool sees one average per scheduler quantum, while K-LEB's
// 100µs windows resolve program phases into the power trace.
package power

import (
	"fmt"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

// Model is a linear per-event energy model.
type Model struct {
	// StaticWatts is the constant baseline (leakage + uncore).
	StaticWatts float64
	// EnergyPerEvent maps each event to its marginal energy in nanojoules.
	// Events absent from the map contribute nothing.
	EnergyPerEvent map[isa.Event]float64
}

// DefaultModel returns weights of the magnitude the literature reports for
// Nehalem-class parts: ~0.5nJ per instruction, tens of nJ per DRAM access,
// and a ~15W static floor.
func DefaultModel() Model {
	return Model{
		StaticWatts: 15,
		EnergyPerEvent: map[isa.Event]float64{
			isa.EvInstructions: 0.45,
			isa.EvFPOps:        0.30,
			isa.EvL2Misses:     4.0,
			isa.EvLLCMisses:    35.0, // DRAM access + bus
			isa.EvCacheFlushes: 6.0,
		},
	}
}

// Point is one window's power estimate.
type Point struct {
	Time  ktime.Time
	Watts float64
}

// Estimate is a power trace plus its integral.
type Estimate struct {
	// Series is the per-window power estimate.
	Series []Point
	// EnergyJoules integrates the trace over the sampled span.
	EnergyJoules float64
	// MeanWatts and PeakWatts summarize the trace.
	MeanWatts, PeakWatts float64
}

// FromSamples evaluates the model over a collected sample stream. The
// events slice gives the meaning of each delta column. At least one modeled
// event must be present.
func (m Model) FromSamples(events []isa.Event, samples []monitor.Sample) (*Estimate, error) {
	modeled := 0
	idx := make([]float64, len(events)) // nJ weight per column
	for i, ev := range events {
		if w, ok := m.EnergyPerEvent[ev]; ok {
			idx[i] = w
			modeled++
		}
	}
	if modeled == 0 {
		return nil, fmt.Errorf("power: none of the collected events %v are in the model", events)
	}
	est := &Estimate{}
	var prev ktime.Time
	var sum float64
	for si, s := range samples {
		var nj float64
		for i, d := range s.Deltas {
			if i < len(idx) {
				nj += idx[i] * float64(d)
			}
		}
		window := s.Time.Sub(prev)
		if si == 0 || window == 0 {
			// The first window's span is unknown; approximate with the
			// next gap once available, or skip a zero-length window.
			prev = s.Time
			if si == 0 && len(samples) > 1 {
				window = samples[1].Time.Sub(s.Time)
			}
			if window == 0 {
				continue
			}
		}
		watts := m.StaticWatts + nj/float64(window) // nJ per ns == W
		est.Series = append(est.Series, Point{Time: s.Time, Watts: watts})
		est.EnergyJoules += watts * window.Seconds()
		sum += watts
		if watts > est.PeakWatts {
			est.PeakWatts = watts
		}
		prev = s.Time
	}
	if n := len(est.Series); n > 0 {
		est.MeanWatts = sum / float64(n)
	}
	return est, nil
}
