// Package prof wires the standard runtime/pprof CPU and heap profilers
// behind the -cpuprofile / -memprofile flags shared by the kleb and
// experiments commands. Profiling is host-side observability only: it
// never touches the simulation's virtual clock or RNG streams.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function is idempotent, so fatal
// exit paths can flush profiles without double-stopping the happy path's
// deferred call. With both paths empty, Start is a no-op and stop does
// nothing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the start failure is the error worth reporting
			return nil, err
		}
		cpuFile = f
	}
	done := false
	stop = func() error {
		if done {
			return nil
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// Collect garbage first so the heap profile reflects live
			// data, not whatever the last GC cycle left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close() // the write failure is the error worth reporting
				return err
			}
			return f.Close()
		}
		return nil
	}
	return stop, nil
}
