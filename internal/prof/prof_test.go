package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpuPath, memPath)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatalf("second stop: %v", err)
	}
	for _, p := range []string{cpuPath, memPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartNoPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
