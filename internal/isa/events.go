// Package isa defines the instruction-level vocabulary shared by the CPU
// model, the PMU and the workloads: hardware event classes, privilege
// levels, and the instruction blocks in which workloads describe their work.
package isa

import (
	"fmt"
	"strings"
)

// Priv is the privilege level at which a stretch of work executes. The PMU
// filters event counting by privilege exactly as the USR/OS bits of
// IA32_PERFEVTSELx do on real hardware.
type Priv uint8

const (
	// User is ring-3 application code.
	User Priv = iota
	// Kernel is ring-0 code: syscall handlers, interrupt handlers, the
	// scheduler, and module code such as K-LEB itself.
	Kernel
)

func (p Priv) String() string {
	if p == Kernel {
		return "kernel"
	}
	return "user"
}

// Event identifies a hardware event class produced by the CPU model. These
// are the ground-truth event streams; the PMU maps architectural event
// encodings onto them per machine profile.
type Event uint8

const (
	// EvInstructions counts all retired instructions.
	EvInstructions Event = iota
	// EvCycles counts unhalted core clock cycles.
	EvCycles
	// EvRefCycles counts unhalted cycles at the reference (TSC) rate.
	EvRefCycles
	// EvLoads counts retired load instructions.
	EvLoads
	// EvStores counts retired store instructions.
	EvStores
	// EvBranches counts retired branch instructions.
	EvBranches
	// EvBranchMisses counts mispredicted retired branches.
	EvBranchMisses
	// EvLLCRefs counts last-level cache references (L2 misses reaching LLC).
	EvLLCRefs
	// EvLLCMisses counts last-level cache misses (references reaching DRAM).
	EvLLCMisses
	// EvL1DMisses counts L1 data cache misses.
	EvL1DMisses
	// EvL2Misses counts L2 cache misses.
	EvL2Misses
	// EvMulOps counts arithmetic multiply operations (ARITH.MUL on Nehalem).
	EvMulOps
	// EvFPOps counts floating-point operations executed.
	EvFPOps
	// EvCacheFlushes counts explicit cache line flushes (CLFLUSH).
	EvCacheFlushes
	// EvDTLBMisses counts data TLB misses (page walks).
	EvDTLBMisses
	// EvStallCycles counts cycles in which execution stalled (memory stalls,
	// mispredict recovery, flush latency) — the non-pipelined remainder of
	// EvCycles.
	EvStallCycles
	// EvCASReads counts DRAM CAS read commands at the integrated memory
	// controller — an uncore (IMC) event: it observes socket-wide memory
	// traffic and ignores the core's privilege filter.
	EvCASReads
	// EvCASWrites counts DRAM CAS write commands at the IMC (uncore).
	EvCASWrites
	// NumEvents is the number of event classes.
	NumEvents
)

var eventNames = [NumEvents]string{
	"INST_RETIRED",
	"CPU_CLK_UNHALTED.CORE",
	"CPU_CLK_UNHALTED.REF",
	"MEM_INST_RETIRED.LOADS",
	"MEM_INST_RETIRED.STORES",
	"BR_INST_RETIRED.ALL",
	"BR_MISP_RETIRED.ALL",
	"LLC_REFERENCES",
	"LLC_MISSES",
	"L1D.REPLACEMENT",
	"L2_RQSTS.MISS",
	"ARITH.MUL",
	"FP_COMP_OPS_EXE",
	"CLFLUSH.RETIRED",
	"DTLB_LOAD_MISSES.WALK_COMPLETED",
	"STALL_CYCLES",
	"UNC_M_CAS_COUNT.RD",
	"UNC_M_CAS_COUNT.WR",
}

// Uncore reports whether the event class counts in an uncore PMU block
// (the IMC) rather than the core PMU. Uncore events observe socket-wide
// traffic, ignore the core's privilege filter, and cannot be attributed to
// a single process.
func (e Event) Uncore() bool {
	return e == EvCASReads || e == EvCASWrites
}

// String returns the canonical mnemonic for the event.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// eventAliases maps common perf-style spellings onto the canonical
// mnemonics, so CLI flags like "llc_misses" or "instructions" resolve.
var eventAliases = map[string]Event{
	"INSTRUCTIONS":  EvInstructions,
	"INST":          EvInstructions,
	"CYCLES":        EvCycles,
	"CPU_CYCLES":    EvCycles,
	"REF_CYCLES":    EvRefCycles,
	"LOADS":         EvLoads,
	"MEM_LOADS":     EvLoads,
	"STORES":        EvStores,
	"MEM_STORES":    EvStores,
	"BRANCHES":      EvBranches,
	"BRANCH_MISSES": EvBranchMisses,
	"LLC_REFS":      EvLLCRefs,
	"CACHE_REFS":    EvLLCRefs,
	"CACHE_MISSES":  EvLLCMisses,
	"L1D_MISSES":    EvL1DMisses,
	"L2_MISSES":     EvL2Misses,
	"MULS":          EvMulOps,
	"FLOPS":         EvFPOps,
	"CACHE_FLUSHES": EvCacheFlushes,
	"CLFLUSH":       EvCacheFlushes,
	"DTLB_MISSES":   EvDTLBMisses,
	"STALLS":        EvStallCycles,
	"STALL":         EvStallCycles,
	"CAS_READS":     EvCASReads,
	"CAS_WRITES":    EvCASWrites,
	"MEM_READS":     EvCASReads,
	"MEM_WRITES":    EvCASWrites,
	"LLC_REFERENCE": EvLLCRefs, // common singular typos
	"LLC_MISS":      EvLLCMisses,
}

// EventByName resolves a mnemonic back to an event class. Matching is
// case-insensitive, ignores surrounding whitespace, and accepts the
// perf-style aliases above alongside the canonical names.
func EventByName(name string) (Event, bool) {
	name = strings.ToUpper(strings.TrimSpace(name))
	for i, n := range eventNames {
		if n == name {
			return Event(i), true
		}
	}
	if ev, ok := eventAliases[name]; ok {
		return ev, true
	}
	return 0, false
}

// Counts is a dense vector of per-event occurrence counts.
type Counts [NumEvents]uint64

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	for i := range c {
		c[i] += o[i]
	}
}

// Sub returns c - o with per-element underflow clamped to zero. Counter
// reads in the tools use it to form per-interval deltas.
func (c Counts) Sub(o Counts) Counts {
	var out Counts
	for i := range c {
		if c[i] >= o[i] {
			out[i] = c[i] - o[i]
		}
	}
	return out
}

// Mul returns c with every count multiplied by k, used when the kernel
// batches k identical replayed blocks into one priced unit.
func (c Counts) Mul(k uint64) Counts {
	var out Counts
	for i, v := range c {
		out[i] = v * k
	}
	return out
}

// Scale returns c scaled by num/den (rounding to nearest), used when an
// instruction block is split at a timer boundary.
func (c Counts) Scale(num, den uint64) Counts {
	var out Counts
	if den == 0 {
		return out
	}
	for i, v := range c {
		hi := v / den
		lo := v % den
		out[i] = hi*num + (lo*num+den/2)/den
	}
	return out
}
