package isa

// MemPattern describes the memory access behaviour of an instruction block.
// The cache model synthesizes an address stream from it: a mixture of a
// strided sequential walk and uniformly random accesses, both confined to a
// footprint placed at Base. Distinct Base values keep the working sets of
// different processes (and of phases within one process) from aliasing.
type MemPattern struct {
	// Base is the starting virtual address of the region.
	Base uint64
	// Footprint is the size of the touched region in bytes. A footprint
	// larger than the LLC produces memory-intensive behaviour; one that
	// fits in L1 produces compute-bound behaviour.
	Footprint uint64
	// Stride is the byte distance between consecutive sequential accesses.
	// Zero means the line size (unit-stride streaming).
	Stride uint64
	// RandomFrac is the fraction of accesses ([0,1]) drawn uniformly at
	// random from the footprint instead of following the stride walk.
	RandomFrac float64
}

// Block is the unit of work a workload hands to the CPU model: a batch of
// instructions with a given class mix and memory behaviour. Blocks are kept
// small (tens of microseconds of execution) so periodic sampling observes
// phase changes; the engine can additionally split a block proportionally
// when a timer fires mid-block.
type Block struct {
	// Instr is the total number of instructions retired by the block.
	Instr uint64
	// Loads and Stores are retired memory operations; they drive the cache
	// hierarchy simulation. Loads+Stores must not exceed Instr.
	Loads, Stores uint64
	// Branches is the number of retired branch instructions, of which
	// BranchMispredictRate (0..1) mispredict.
	Branches             uint64
	BranchMispredictRate float64
	// MulOps counts arithmetic multiplications (ARITH.MUL); FPOps counts
	// floating point operations (for GFLOPS computations).
	MulOps, FPOps uint64
	// Flushes is the number of explicit CLFLUSH operations the block issues
	// against its footprint (used by the Meltdown Flush+Reload model).
	Flushes uint64
	// Mem is the access pattern for loads, stores and flushes.
	Mem MemPattern
	// Priv is the privilege level the block runs at. Workloads emit Kernel
	// blocks for in-kernel phases (e.g. LINPACK's configuration parsing).
	Priv Priv
}

// MemOps returns the number of data memory operations in the block.
func (b Block) MemOps() uint64 { return b.Loads + b.Stores }

// Split divides the block into a first part containing frac ≈ num/den of
// the work and the remainder. Counts are scaled proportionally; the memory
// pattern is preserved. Split(0) returns an empty head.
func (b Block) Split(num, den uint64) (head, tail Block) {
	if den == 0 || num >= den {
		return b, Block{}
	}
	head = b
	head.Instr = scale(b.Instr, num, den)
	head.Loads = scale(b.Loads, num, den)
	head.Stores = scale(b.Stores, num, den)
	head.Branches = scale(b.Branches, num, den)
	head.MulOps = scale(b.MulOps, num, den)
	head.FPOps = scale(b.FPOps, num, den)
	head.Flushes = scale(b.Flushes, num, den)
	tail = b
	tail.Instr -= head.Instr
	tail.Loads -= head.Loads
	tail.Stores -= head.Stores
	tail.Branches -= head.Branches
	tail.MulOps -= head.MulOps
	tail.FPOps -= head.FPOps
	tail.Flushes -= head.Flushes
	return head, tail
}

func scale(v, num, den uint64) uint64 {
	hi := v / den
	lo := v % den
	return hi*num + (lo*num+den/2)/den
}

// Empty reports whether the block contains no work at all.
func (b Block) Empty() bool {
	return b.Instr == 0 && b.MemOps() == 0 && b.Flushes == 0
}
