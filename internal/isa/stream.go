package isa

// CompiledStream is a workload lowered to a flat run-length-encoded array
// of macro-op blocks: each Run is one block repeated Count times. Steady
// phases — thousands of identical blocks — compress to a single Run, which
// is what lets the kernel's batch executor ask "how many more copies of
// this block are coming?" in O(1) instead of re-deriving blockAt per step
// (DESIGN.md §13).
type CompiledStream struct {
	Runs []Run
}

// Run is Count consecutive copies of one Block.
type Run struct {
	Block Block
	Count uint64
}

// Instr returns the total instruction count of the stream.
func (s CompiledStream) Instr() uint64 {
	var n uint64
	for _, r := range s.Runs {
		n += r.Block.Instr * r.Count
	}
	return n
}
