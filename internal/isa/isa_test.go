package isa

import (
	"testing"
	"testing/quick"
)

func TestEventNamesRoundTrip(t *testing.T) {
	for ev := Event(0); ev < NumEvents; ev++ {
		name := ev.String()
		if name == "" {
			t.Fatalf("event %d has empty name", ev)
		}
		back, ok := EventByName(name)
		if !ok || back != ev {
			t.Errorf("round trip failed for %v", ev)
		}
	}
	if _, ok := EventByName("NO_SUCH_EVENT"); ok {
		t.Error("bogus name resolved")
	}
	if got := Event(200).String(); got != "Event(200)" {
		t.Errorf("out-of-range String: %q", got)
	}
}

func TestEventByNameLenientMatching(t *testing.T) {
	cases := []struct {
		in   string
		want Event
	}{
		// Case-insensitive canonical names.
		{"llc_misses", EvLLCMisses},
		{"Llc_Misses", EvLLCMisses},
		{"inst_retired", EvInstructions},
		{"mem_inst_retired.loads", EvLoads},
		// Surrounding whitespace (e.g. "a, b" comma splits).
		{"  LLC_MISSES ", EvLLCMisses},
		{"\tINST_RETIRED\n", EvInstructions},
		// Perf-style aliases.
		{"instructions", EvInstructions},
		{"cycles", EvCycles},
		{"ref_cycles", EvRefCycles},
		{"loads", EvLoads},
		{"stores", EvStores},
		{"branches", EvBranches},
		{"branch_misses", EvBranchMisses},
		{"cache_refs", EvLLCRefs},
		{"cache_misses", EvLLCMisses},
		{"l1d_misses", EvL1DMisses},
		{"l2_misses", EvL2Misses},
		{"flops", EvFPOps},
		{"clflush", EvCacheFlushes},
		{"dtlb_misses", EvDTLBMisses},
		{" llc_refs ", EvLLCRefs},
	}
	for _, c := range cases {
		got, ok := EventByName(c.in)
		if !ok || got != c.want {
			t.Errorf("EventByName(%q) = %v, %v; want %v", c.in, got, ok, c.want)
		}
	}
	for _, bogus := range []string{"", "  ", "llc", "misses", "LLC MISSES"} {
		if ev, ok := EventByName(bogus); ok {
			t.Errorf("EventByName(%q) resolved to %v; want no match", bogus, ev)
		}
	}
}

func TestCountsAddSub(t *testing.T) {
	var a, b Counts
	a[EvLoads] = 10
	b[EvLoads] = 3
	b[EvStores] = 5
	a.Add(b)
	if a[EvLoads] != 13 || a[EvStores] != 5 {
		t.Errorf("Add: %v", a)
	}
	d := a.Sub(b)
	if d[EvLoads] != 10 || d[EvStores] != 0 {
		t.Errorf("Sub: %v", d)
	}
	// Underflow clamps.
	d = b.Sub(a)
	if d[EvLoads] != 0 {
		t.Errorf("Sub should clamp underflow, got %d", d[EvLoads])
	}
}

func TestCountsScale(t *testing.T) {
	var c Counts
	c[EvInstructions] = 1000
	half := c.Scale(1, 2)
	if half[EvInstructions] != 500 {
		t.Errorf("Scale half: %d", half[EvInstructions])
	}
	if z := c.Scale(1, 0); z[EvInstructions] != 0 {
		t.Error("Scale with zero denominator should zero out")
	}
	same := c.Scale(7, 7)
	if same != c {
		t.Error("Scale identity changed counts")
	}
}

func randomBlock(instr uint32, loads, stores, branches, muls uint16) Block {
	n := uint64(instr)
	return Block{
		Instr:    n,
		Loads:    uint64(loads) % (n + 1),
		Stores:   uint64(stores) % (n + 1),
		Branches: uint64(branches) % (n + 1),
		MulOps:   uint64(muls) % (n + 1),
		FPOps:    uint64(muls) * 2 % (n + 1),
		Flushes:  uint64(branches) % 64,
	}
}

func TestBlockSplitConservesWork(t *testing.T) {
	prop := func(instr uint32, loads, stores, branches, muls uint16, num8, den8 uint8) bool {
		b := randomBlock(instr|1, loads, stores, branches, muls)
		den := uint64(den8) + 2
		num := uint64(num8) % den
		head, tail := b.Split(num, den)
		return head.Instr+tail.Instr == b.Instr &&
			head.Loads+tail.Loads == b.Loads &&
			head.Stores+tail.Stores == b.Stores &&
			head.Branches+tail.Branches == b.Branches &&
			head.MulOps+tail.MulOps == b.MulOps &&
			head.FPOps+tail.FPOps == b.FPOps &&
			head.Flushes+tail.Flushes == b.Flushes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBlockSplitEdges(t *testing.T) {
	b := Block{Instr: 100, Loads: 40}
	head, tail := b.Split(0, 10)
	if head.Instr != 0 || tail.Instr != 100 {
		t.Errorf("Split(0): head=%d tail=%d", head.Instr, tail.Instr)
	}
	head, tail = b.Split(10, 10)
	if head.Instr != 100 || !tail.Empty() {
		t.Errorf("Split(all): head=%d tailEmpty=%v", head.Instr, tail.Empty())
	}
	head, tail = b.Split(5, 0)
	if head.Instr != 100 || !tail.Empty() {
		t.Error("Split with zero denominator should return whole block")
	}
}

func TestBlockSplitPreservesMetadata(t *testing.T) {
	b := Block{
		Instr: 100, Priv: Kernel,
		BranchMispredictRate: 0.25,
		Mem:                  MemPattern{Base: 42, Footprint: 4096, Stride: 8, RandomFrac: 0.5},
	}
	head, tail := b.Split(1, 2)
	for _, part := range []Block{head, tail} {
		if part.Priv != Kernel || part.BranchMispredictRate != 0.25 || part.Mem != b.Mem {
			t.Error("Split lost block metadata")
		}
	}
}

func TestBlockMemOpsAndEmpty(t *testing.T) {
	b := Block{Loads: 3, Stores: 4}
	if b.MemOps() != 7 {
		t.Errorf("MemOps: %d", b.MemOps())
	}
	if (Block{}).Empty() != true {
		t.Error("zero block should be empty")
	}
	if (Block{Flushes: 1}).Empty() {
		t.Error("flush-only block is not empty")
	}
	if (Block{Instr: 1}).Empty() {
		t.Error("block with instructions is not empty")
	}
}

func TestPrivString(t *testing.T) {
	if User.String() != "user" || Kernel.String() != "kernel" {
		t.Error("Priv.String wrong")
	}
}
