package kernel

import (
	"fmt"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/ktime"
)

// Micro-benchmarks for the scheduler's hot path. These are the bodies
// behind scripts/bench_kernel.sh / BENCH_kernel.json: the sleeper storm is
// the regression gate's headline number (it is the shape that made table2
// O(P)-scan-bound before the unified event queue), the steady-state
// benchmark guards the zero-allocation execute loop, and the timer churn
// benchmark prices one full arm→fire→re-arm cycle.

// benchSleepers is the storm width: large enough that a per-event O(P)
// process scan dominates, small enough that the run queue stays realistic.
const benchSleepers = 64

// BenchmarkSleeperStorm drives benchSleepers processes through repeated
// 100µs HR sleeps; one op is one sleep→wake cycle. Every wakeup is a
// kernel event, so ns/op prices the nextEvent/fireDue path.
func BenchmarkSleeperStorm(b *testing.B) {
	k := testKernel(1)
	iters := b.N/benchSleepers + 1
	var sleep Op = OpSleep{D: 100 * ktime.Microsecond, HR: true} // preboxed: measure the kernel, not the program
	for i := 0; i < benchSleepers; i++ {
		count := 0
		k.Spawn(fmt.Sprintf("sleeper%02d", i), ProgramFunc(func(k *Kernel, p *Process) Op {
			count++
			if count > iters {
				return OpExit{}
			}
			return sleep
		}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerChurn prices the HR timer arm→fire→re-arm cycle with eight
// periodic timers live (the K-LEB + perf-mux shape); one op is one firing.
func BenchmarkTimerChurn(b *testing.B) {
	k := testKernel(2)
	fired := 0
	for i := 0; i < 8; i++ {
		k.StartHRTimer(10*ktime.Microsecond, 100*ktime.Microsecond, func(k *Kernel, t *HRTimer) bool {
			fired++
			return fired < b.N
		})
	}
	k.Spawn("spin", ProgramFunc(func(k *Kernel, p *Process) Op {
		if fired >= b.N {
			return OpExit{}
		}
		return OpExec{Block: workBlock(50_000)}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSteadyRunCurrent measures the pure execute loop: one process,
// no timers, no sleepers; one op is one instruction block through
// runCurrent/applyWork. The steady state must not allocate.
func BenchmarkSteadyRunCurrent(b *testing.B) {
	k := testKernel(3)
	n := 0
	var op Op = OpExec{Block: workBlock(10_000)}
	k.Spawn("spin", ProgramFunc(func(k *Kernel, p *Process) Op {
		n++
		if n > b.N {
			return OpExit{}
		}
		return op
	}))
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcessTable prices one pid-ordered walk of a 384-entry process
// table, 256 exited and 128 live — the shape doExit's waiter scan and the
// Processes snapshot share since the table moved from a map to the
// pid-ascending byPID slice.
func BenchmarkProcessTable(b *testing.B) {
	k := testKernel(5)
	for i := 0; i < 256; i++ {
		k.Spawn(fmt.Sprintf("done%03d", i), burner(0, 0))
	}
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		k.Spawn(fmt.Sprintf("live%03d", i), burner(1, 1_000))
	}
	exited := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exited = 0
		for _, p := range k.Processes() {
			if p.Exited() {
				exited++
			}
		}
	}
	if exited != 256 {
		b.Fatalf("exited = %d, want 256", exited)
	}
}

// benchStream is the smallest possible BlockStream program: it emits `left`
// copies of one block, announcing the remaining run length so executeRun
// can batch stable memo replays exactly as a compiled workload phase does.
type benchStream struct {
	block isa.Block
	left  uint64
}

func (s *benchStream) Next(k *Kernel, p *Process) Op {
	if s.left == 0 {
		return OpExit{}
	}
	s.left--
	return OpExec{Block: s.block}
}

func (s *benchStream) PeekRun() (isa.Block, uint64) { return s.block, s.left }
func (s *benchStream) ConsumeRun(n uint64)          { s.left -= n }

// BenchmarkBlockExecute prices one block through the batched compiled-stream
// path: a BlockStream program whose blocks freeze into stable memo replays,
// so executeRun collapses whole timeslices into single priced units. One op
// is one block; ns/op is the amortized per-block cost the table2 win rests
// on (compare BenchmarkSteadyRunCurrent, the same shape unbatched).
func BenchmarkBlockExecute(b *testing.B) {
	k := testKernel(6)
	k.Spawn("stream", &benchStream{block: workBlock(10_000), left: uint64(b.N)})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// phaseStream cycles through a block mix in runs of runLen, the shape of a
// compiled multi-phase workload: batching works within a run, and every run
// boundary forces a real Next call and (on the first visits) a memo measure.
type phaseStream struct {
	blocks []isa.Block
	runLen uint64
	total  uint64 // blocks still to emit overall
	left   uint64 // copies of blocks[bi] still to emit
	bi     int
}

func (s *phaseStream) Next(k *Kernel, p *Process) Op {
	if s.total == 0 {
		return OpExit{}
	}
	if s.left == 0 {
		s.bi = (s.bi + 1) % len(s.blocks)
		s.left = s.runLen
	}
	s.left--
	s.total--
	return OpExec{Block: s.blocks[s.bi]}
}

func (s *phaseStream) PeekRun() (isa.Block, uint64) {
	n := s.left
	if n > s.total {
		n = s.total
	}
	return s.blocks[s.bi], n
}

func (s *phaseStream) ConsumeRun(n uint64) {
	s.left -= n
	s.total -= n
}

// BenchmarkSteadyPhase prices the compiled execution of a steady phase with
// a realistic block mix: compute-bound, memory-bound and branchy blocks
// alternating in runs of 64, so the figure blends stable replays with the
// run-boundary Next calls and warmth-class re-probes a real phase incurs.
func BenchmarkSteadyPhase(b *testing.B) {
	compute := workBlock(10_000)
	memory := workBlock(10_000)
	memory.Loads = 5_000
	memory.Mem = isa.MemPattern{Base: 0xB000_0000, Footprint: 8 << 20, Stride: 64, RandomFrac: 1}
	branchy := workBlock(10_000)
	branchy.Branches = 2_000
	k := testKernel(7)
	k.Spawn("phase", &phaseStream{
		blocks: []isa.Block{compute, memory, branchy},
		runLen: 64,
		total:  uint64(b.N),
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// TestSteadyRunCurrentNoAlloc is the hard zero-allocation gate on the
// steady-state scheduler loop: once warm, advancing a compute-bound
// process must not allocate at all. (Skipped under the race detector,
// which instruments allocations.)
func TestSteadyRunCurrentNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	k := testKernel(4)
	var op Op = OpExec{Block: workBlock(10_000)}
	k.Spawn("spin", ProgramFunc(func(k *Kernel, p *Process) Op { return op }))
	cursor := ktime.Time(0)
	step := func() {
		cursor = cursor.Add(ktime.Millisecond)
		if err := k.RunUntil(cursor); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm up: first blocks grow the pending queue and cache cursors
	if avg := testing.AllocsPerRun(10, step); avg != 0 {
		t.Errorf("steady-state runCurrent allocates %v allocs/op, want 0", avg)
	}
}
