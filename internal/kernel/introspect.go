package kernel

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file provides the kernel's observability surface: a /proc-style
// textual dump of scheduler and module state, and an strace-style syscall
// trace. Both exist for debugging simulations and for the CLI's inspection
// flags; neither perturbs virtual time.

// DumpProc writes a ps-like table of every process.
func (k *Kernel) DumpProc(w io.Writer) {
	fmt.Fprintf(w, "%5s %5s %-18s %-9s %12s %12s %8s\n",
		"PID", "PPID", "NAME", "STATE", "USER", "KERNEL", "SWITCHES")
	for _, p := range k.Processes() {
		fmt.Fprintf(w, "%5d %5d %-18s %-9s %12v %12v %8d\n",
			p.PID(), p.PPID(), p.Name(), p.State(), p.UserTime(), p.KernelTime(), p.Switches())
	}
}

// DumpState writes a one-stop snapshot: clock, run queue, timers, modules,
// devices and probe counts.
func (k *Kernel) DumpState(w io.Writer) {
	fmt.Fprintf(w, "clock   %v (idle %v)\n", k.Now(), k.IdleTime())
	cur := "idle"
	if k.current != nil {
		cur = fmt.Sprintf("%s (pid %d)", k.current.Name(), k.current.PID())
	}
	fmt.Fprintf(w, "running %s\n", cur)
	var rq []string
	for i := 0; i < k.runq.Len(); i++ {
		rq = append(rq, k.runq.At(i).Name())
	}
	fmt.Fprintf(w, "runq    [%s]\n", strings.Join(rq, " "))
	fmt.Fprintf(w, "timers  %d armed\n", k.armedTimers())
	names := make([]string, 0, len(k.modules))
	for name := range k.modules {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "modules [%s]\n", strings.Join(names, " "))
	devs := make([]string, 0, len(k.devices))
	for name := range k.devices {
		devs = append(devs, name)
	}
	sort.Strings(devs)
	fmt.Fprintf(w, "devices [%s]\n", strings.Join(devs, " "))
	fmt.Fprintf(w, "probes  switch=%d fork=%d exit=%d\n",
		len(k.switchProbes), len(k.forkProbes), len(k.exitProbes))
	fmt.Fprintln(w, "processes:")
	k.DumpProc(w)
}

// TraceSyscalls mirrors every syscall (name, calling process, entry time)
// to w until the returned stop function runs — strace for the simulation.
func (k *Kernel) TraceSyscalls(w io.Writer) (stop func()) {
	k.straceSinks = append(k.straceSinks, w)
	return func() {
		for i, sink := range k.straceSinks {
			if sink == w {
				k.straceSinks = append(k.straceSinks[:i], k.straceSinks[i+1:]...)
				return
			}
		}
	}
}

func (k *Kernel) traceSyscall(p *Process, name string) {
	for _, w := range k.straceSinks {
		//klebvet:allow hotalloc -- strace debugging sink; straceSinks is empty in steady state and the caller gates on that
		fmt.Fprintf(w, "%12v %s(%d) %s\n", k.Now(), p.Name(), p.PID(), name)
	}
}
