package kernel

import (
	"fmt"

	"kleb/internal/fault"
)

// Module is a loadable kernel module. K-LEB is the canonical example: it is
// loaded into an already-running kernel (no patch, no reboot), registers a
// character device for its controller, and attaches kprobes in Init.
type Module interface {
	// ModuleName is the module's unique name.
	ModuleName() string
	// Init is called at insmod time with kernel services available.
	Init(k *Kernel) error
	// Exit is called at rmmod time and must release all resources.
	Exit(k *Kernel)
}

// IoctlFn handles an ioctl on a registered device. p is the calling
// process. Handlers may charge additional kernel time (copies) via
// Kernel.ChargeKernel.
type IoctlFn func(k *Kernel, p *Process, cmd uint32, arg any) (any, error)

// LoadModule inserts a module into the running kernel.
func (k *Kernel) LoadModule(m Module) error {
	name := m.ModuleName()
	if _, dup := k.modules[name]; dup {
		return fmt.Errorf("kernel: module %q already loaded", name)
	}
	if err := m.Init(k); err != nil {
		return fmt.Errorf("kernel: init of module %q: %w", name, err)
	}
	k.modules[name] = m
	return nil
}

// UnloadModule removes a loaded module.
func (k *Kernel) UnloadModule(name string) error {
	m, ok := k.modules[name]
	if !ok {
		return fmt.Errorf("kernel: module %q not loaded", name)
	}
	m.Exit(k)
	delete(k.modules, name)
	return nil
}

// Module returns a loaded module by name.
func (k *Kernel) Module(name string) (Module, bool) {
	m, ok := k.modules[name]
	return m, ok
}

// RegisterDevice exposes a character device (e.g. /dev/kleb) whose ioctls
// are served by fn. Returns an error if the name is taken.
func (k *Kernel) RegisterDevice(name string, fn IoctlFn) error {
	if _, dup := k.devices[name]; dup {
		return fmt.Errorf("kernel: device %q already registered", name)
	}
	k.devices[name] = fn
	return nil
}

// UnregisterDevice removes a device registration.
func (k *Kernel) UnregisterDevice(name string) {
	delete(k.devices, name)
}

// Ioctl dispatches an ioctl to a device. It must be called from syscall
// context (an OpSyscall handler); the fixed handler cost is charged here.
func (k *Kernel) Ioctl(p *Process, device string, cmd uint32, arg any) (any, error) {
	fn, ok := k.devices[device]
	if !ok {
		return nil, fmt.Errorf("kernel: ioctl on unknown device %q", device)
	}
	k.ChargeKernel(k.costs.IoctlBase)
	k.tel.Ioctl(k.clock.Now(), device, cmd, int32(p.pid))
	// Injected ioctl failures happen at the boundary, before the handler:
	// the module never sees the command, so a retried transient cannot
	// double-apply it.
	if err := k.faults.IoctlError(device, cmd); err != nil {
		kind := fault.KindIoctlPermanent
		if fault.IsTransient(err) {
			kind = fault.KindIoctlTransient
		}
		k.tel.FaultInjected(k.clock.Now(), kind)
		return nil, err
	}
	return fn(k, p, cmd, arg)
}
