package kernel

import (
	"container/heap"

	"kleb/internal/ktime"
)

// This file implements the kernel's unified event queue: one binary heap
// holding every pending time-driven event — HR timer expiries and sleeper
// wakeups — ordered by the deterministic key (time, kind, id). Folding the
// sleepers into the timer heap is what turns the scheduler loop from a
// poll-driven O(P) process scan per iteration into an event-driven
// O(log P) pop, and the composite key is what keeps simultaneous events
// ordered identically across runs and worker counts:
//
//   - time  — earlier events first;
//   - kind  — at the same instant, timer expiries fire before sleeper
//     wakeups (the historical fireTimersDue-then-wake order the telemetry
//     goldens encode);
//   - id    — within a kind, the arming sequence number for timers and the
//     pid for sleepers.
//
// Nodes are intrusive: HRTimer and Process each embed their eventNode, so
// arming, cancelling and firing events never allocates.

// eventKind discriminates the unified queue's entries. The numeric order is
// load-bearing: it is the tie-break between kinds at the same instant.
type eventKind uint8

const (
	// evTimer is an HR timer expiry; fires before wakeups at the same time.
	evTimer eventKind = iota
	// evWake is a sleeping process's wakeup instant.
	evWake
)

// eventNode is the intrusive handle every schedulable entity embeds.
// Exactly one of timer/proc is set, matching kind.
type eventNode struct {
	at    ktime.Time
	kind  eventKind
	id    uint64 // timer arming sequence or pid — the within-kind tie-break
	index int    // heap position, -1 when unqueued
	timer *HRTimer
	proc  *Process
}

// queued reports whether the node is currently in the event heap.
func (n *eventNode) queued() bool { return n.index >= 0 }

// eventHeap is the container/heap backing store.
type eventHeap []*eventNode

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].id < h[j].id
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	n := x.(*eventNode)
	n.index = len(*h)
	*h = append(*h, n)
}

func (h *eventHeap) Pop() any {
	old := *h
	last := len(old) - 1
	n := old[last]
	old[last] = nil
	n.index = -1
	*h = old[:last]
	return n
}

// armEvent queues n and refreshes the cached next-event time. n.at, n.kind
// and n.id must already be set.
//
//klebvet:hotpath
func (k *Kernel) armEvent(n *eventNode) {
	heap.Push(&k.events, n)
	k.refreshNext()
}

// cancelEvent removes n from the queue if present and refreshes the cache.
//
//klebvet:hotpath
func (k *Kernel) cancelEvent(n *eventNode) {
	if !n.queued() {
		return
	}
	heap.Remove(&k.events, n.index)
	k.refreshNext()
}

// popEvent removes and returns the earliest event. The heap must be
// non-empty.
//
//klebvet:hotpath
func (k *Kernel) popEvent() *eventNode {
	n := heap.Pop(&k.events).(*eventNode)
	k.refreshNext()
	return n
}

// refreshNext re-derives the cached next-event time from the heap top. It
// runs only when the heap mutates (arm/cancel/pop), so the scheduler loop
// reads nextAt/nextOk without touching the heap at all.
//
//klebvet:hotpath
func (k *Kernel) refreshNext() {
	if len(k.events) == 0 {
		k.nextAt, k.nextOk = 0, false
		return
	}
	k.nextAt, k.nextOk = k.events[0].at, true
}

// armedTimers counts queued timer events (the introspection surface).
func (k *Kernel) armedTimers() int {
	n := 0
	for _, e := range k.events {
		if e.kind == evTimer {
			n++
		}
	}
	return n
}
