package kernel

import (
	"errors"
	"strings"
	"testing"

	"kleb/internal/cache"
	"kleb/internal/cpu"
	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

func testEventTable() *pmu.EventTable {
	return pmu.TableFromClasses("test", map[pmu.Encoding]isa.Event{
		{EventSel: 0x2E, Umask: 0x41}: isa.EvLLCMisses,
		{EventSel: 0x2E, Umask: 0x4F}: isa.EvLLCRefs,
		{EventSel: 0x0B, Umask: 0x01}: isa.EvLoads,
		{EventSel: 0x0B, Umask: 0x02}: isa.EvStores,
		{EventSel: 0xC4, Umask: 0x00}: isa.EvBranches,
		{EventSel: 0xC5, Umask: 0x00}: isa.EvBranchMisses,
	})
}

func testCPU(seed uint64) *cpu.Core {
	cfg := cpu.Config{
		Freq:              ktime.MHz(2000),
		BaseCPI:           0.5,
		BranchMissPenalty: 15,
		FlushCycles:       50,
		Hierarchy: cache.HierarchyConfig{
			L1D:              cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8, LatencyCycles: 4},
			L2:               cache.Config{Name: "L2", Size: 256 << 10, LineSize: 64, Ways: 8, LatencyCycles: 10},
			LLC:              cache.Config{Name: "LLC", Size: 4 << 20, LineSize: 64, Ways: 16, LatencyCycles: 38},
			MemLatencyCycles: 200,
		},
		MaxSimAccesses: 256,
	}
	return cpu.New(cfg, pmu.New(testEventTable()), ktime.NewRand(seed))
}

// quietCosts returns a deterministic cost model (no noise) for exact tests.
func quietCosts() CostModel {
	c := DefaultCosts()
	c.NoiseRel = 0
	c.TimerJitterRel = 0
	c.RunNoiseRel = 0
	return c
}

func testKernel(seed uint64) *Kernel {
	return New(testCPU(seed), quietCosts(), ktime.NewRand(seed), Options{})
}

// workBlock is a small user block.
func workBlock(instr uint64) isa.Block {
	return isa.Block{
		Instr: instr, Loads: instr / 4, Stores: instr / 10, Branches: instr / 10,
		Mem:  isa.MemPattern{Base: 0xA000_0000, Footprint: 32 << 10, Stride: 8},
		Priv: isa.User,
	}
}

// burner runs n blocks then exits.
func burner(blocks int, instr uint64) Program {
	i := 0
	return ProgramFunc(func(k *Kernel, p *Process) Op {
		if i >= blocks {
			return OpExit{Code: 7}
		}
		i++
		return OpExec{Block: workBlock(instr)}
	})
}

func TestSingleProcessRunsToExit(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn("solo", burner(10, 100_000))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() || p.ExitCode() != 7 {
		t.Fatalf("state %v code %d", p.State(), p.ExitCode())
	}
	if p.UserTime() == 0 {
		t.Error("no user time")
	}
	if p.Runtime() == 0 {
		t.Error("no runtime")
	}
	if p.Runtime() < p.UserTime() {
		t.Error("runtime below user time")
	}
}

func TestNilOpMeansExit(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn("nil", ProgramFunc(func(*Kernel, *Process) Op { return nil }))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Error("nil op should exit the process")
	}
}

func TestRoundRobinSharing(t *testing.T) {
	k := testKernel(2)
	// Enough work for ~10 timeslices each.
	a := k.Spawn("a", burner(1600, 100_000))
	b := k.Spawn("b", burner(1600, 100_000))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// Both did the same work; their user times must be close and both must
	// have context-switched repeatedly.
	ra := float64(a.UserTime()) / float64(b.UserTime())
	if ra < 0.9 || ra > 1.1 {
		t.Errorf("unfair scheduling: %v vs %v", a.UserTime(), b.UserTime())
	}
	if a.Switches() < 5 || b.Switches() < 5 {
		t.Errorf("expected many switches: a=%d b=%d", a.Switches(), b.Switches())
	}
	// They interleaved: neither finished before the other started its
	// second slice.
	if a.ExitTime() < b.FirstRun() || b.ExitTime() < a.FirstRun() {
		t.Error("no interleaving")
	}
}

func TestJiffySleepRoundsUp(t *testing.T) {
	k := testKernel(3)
	var woke ktime.Time
	stage := 0
	k.Spawn("sleeper", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSleep{D: 3 * ktime.Millisecond} // rounds to 10ms jiffy
		default:
			woke = k.Now()
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// Wakeup lands on (or just past) the next 10ms boundary.
	if woke < ktime.Time(10*ktime.Millisecond) {
		t.Errorf("jiffy sleep woke early at %v", woke)
	}
	if woke > ktime.Time(10*ktime.Millisecond+100*ktime.Microsecond) {
		t.Errorf("jiffy sleep woke too late at %v", woke)
	}
}

func TestHRSleepIsPrecise(t *testing.T) {
	k := testKernel(4)
	var woke ktime.Time
	stage := 0
	k.Spawn("hr-sleeper", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSleep{D: 3 * ktime.Millisecond, HR: true}
		default:
			woke = k.Now()
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	lo := ktime.Time(3 * ktime.Millisecond)
	hi := lo.Add(50 * ktime.Microsecond) // latency + handler costs
	if woke < lo || woke > hi {
		t.Errorf("HR sleep woke at %v, want within [%v, %v]", woke, lo, hi)
	}
}

func TestSleepUntilAbsolute(t *testing.T) {
	k := testKernel(5)
	var woke ktime.Time
	stage := 0
	k.Spawn("abs", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpExec{Block: workBlock(1_000_000)} // consume some time first
		case 1:
			stage = 2
			return OpSleep{Until: ktime.Time(30 * ktime.Millisecond)}
		default:
			woke = k.Now()
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if woke < ktime.Time(30*ktime.Millisecond) || woke > ktime.Time(30*ktime.Millisecond+100*ktime.Microsecond) {
		t.Errorf("absolute sleep woke at %v", woke)
	}
}

func TestSyscallResultDelivery(t *testing.T) {
	k := testKernel(6)
	var got any
	stage := 0
	k.Spawn("sys", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSyscall{Name: "answer", Fn: func(*Kernel, *Process) any { return 42 }}
		default:
			got = p.SyscallResult
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("syscall result %v", got)
	}
}

func TestSyscallChargesKernelTime(t *testing.T) {
	k := testKernel(7)
	stage := 0
	p := k.Spawn("sys", ProgramFunc(func(k *Kernel, p *Process) Op {
		if stage == 0 {
			stage = 1
			return OpSyscall{Name: "work", Fn: func(k *Kernel, p *Process) any {
				k.ChargeKernel(100 * ktime.Microsecond)
				return nil
			}}
		}
		return OpExit{}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.KernelTime() < 100*ktime.Microsecond {
		t.Errorf("kernel time %v below handler charge", p.KernelTime())
	}
}

func TestSpawnFiresForkProbes(t *testing.T) {
	k := testKernel(8)
	var parentPID, childPID PID
	k.RegisterForkProbe(func(k *Kernel, parent, child *Process) {
		parentPID, childPID = parent.PID(), child.PID()
	})
	stage := 0
	var spawned PID
	par := k.Spawn("parent", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSpawn{Name: "child", Prog: burner(2, 50_000)}
		case 1:
			stage = 2
			spawned, _ = p.SyscallResult.(PID)
			fallthrough
		default:
			if c, ok := k.Process(spawned); ok && !c.Exited() {
				return OpSleep{D: ktime.Millisecond}
			}
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if parentPID != par.PID() || childPID == 0 || childPID == par.PID() {
		t.Errorf("fork probe saw parent=%d child=%d", parentPID, childPID)
	}
	child, ok := k.Process(childPID)
	if !ok || child.PPID() != par.PID() {
		t.Error("child lineage wrong")
	}
}

func TestExitProbesAndSwitchToIdle(t *testing.T) {
	k := testKernel(9)
	var exited []string
	k.RegisterExitProbe(func(k *Kernel, p *Process) {
		exited = append(exited, p.Name())
	})
	var sawExitSwitch bool
	k.RegisterSwitchProbe(func(k *Kernel, prev, next *Process) {
		if prev != nil && next == nil && prev.Name() == "x" {
			sawExitSwitch = true
		}
	})
	k.Spawn("x", burner(2, 10_000))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(exited) != 1 || exited[0] != "x" {
		t.Errorf("exit probes: %v", exited)
	}
	if !sawExitSwitch {
		t.Error("exit must look like a switch to idle for gating hooks")
	}
}

func TestSwitchProbesSeePrevAndNext(t *testing.T) {
	k := testKernel(10)
	type sw struct{ prev, next string }
	var seen []sw
	k.RegisterSwitchProbe(func(k *Kernel, prev, next *Process) {
		name := func(p *Process) string {
			if p == nil {
				return "idle"
			}
			return p.Name()
		}
		seen = append(seen, sw{name(prev), name(next)})
	})
	k.Spawn("a", burner(800, 200_000))
	k.Spawn("b", burner(800, 200_000))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	var ab, ba bool
	for _, s := range seen {
		if s.prev == "a" && s.next == "b" {
			ab = true
		}
		if s.prev == "b" && s.next == "a" {
			ba = true
		}
	}
	if !ab || !ba {
		t.Errorf("round robin should switch both ways; saw %v", seen[:minInt(8, len(seen))])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestUnregisterProbes(t *testing.T) {
	k := testKernel(11)
	count := 0
	id := k.RegisterSwitchProbe(func(*Kernel, *Process, *Process) { count++ })
	fid := k.RegisterForkProbe(func(*Kernel, *Process, *Process) { count++ })
	eid := k.RegisterExitProbe(func(*Kernel, *Process) { count++ })
	k.UnregisterSwitchProbe(id)
	k.UnregisterForkProbe(fid)
	k.UnregisterExitProbe(eid)
	k.Spawn("p", burner(2, 10_000))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("unregistered probes fired %d times", count)
	}
}

func TestHRTimerPeriodicFiring(t *testing.T) {
	k := testKernel(12)
	var fires []ktime.Time
	k.StartHRTimer(ktime.Millisecond, ktime.Millisecond, func(k *Kernel, tm *HRTimer) bool {
		fires = append(fires, k.Now())
		return len(fires) < 10
	})
	k.Spawn("busy", burner(1000, 100_000))
	if err := k.Run(20 * ktime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fires) != 10 {
		t.Fatalf("fires: %d", len(fires))
	}
	for i := 1; i < len(fires); i++ {
		gap := fires[i].Sub(fires[i-1])
		if gap < 900*ktime.Microsecond || gap > 1100*ktime.Microsecond {
			t.Errorf("gap %d: %v", i, gap)
		}
	}
}

func TestHRTimerCancel(t *testing.T) {
	k := testKernel(13)
	fired := 0
	tm := k.StartHRTimer(ktime.Millisecond, ktime.Millisecond, func(*Kernel, *HRTimer) bool {
		fired++
		return true
	})
	k.CancelHRTimer(tm)
	if tm.Active() {
		t.Error("canceled timer still active")
	}
	k.Spawn("busy", burner(100, 100_000))
	if err := k.Run(10 * ktime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("canceled timer fired %d times", fired)
	}
	k.CancelHRTimer(tm) // double cancel is safe
	k.CancelHRTimer(nil)
}

func TestHRTimerFiresWhileIdle(t *testing.T) {
	k := testKernel(14)
	fired := false
	k.StartHRTimer(5*ktime.Millisecond, 0, func(k *Kernel, tm *HRTimer) bool {
		fired = true
		return false
	})
	stage := 0
	k.Spawn("sleepy", ProgramFunc(func(k *Kernel, p *Process) Op {
		if stage == 0 {
			stage = 1
			return OpSleep{D: 20 * ktime.Millisecond}
		}
		return OpExit{}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("one-shot timer did not fire during idle")
	}
	if k.IdleTime() == 0 {
		t.Error("idle time not accounted")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := testKernel(15)
	// A process that sleeps forever without any timer: impossible state is
	// prevented by construction, so force it with a stopped process.
	k.SpawnStopped("never", burner(1, 1))
	err := k.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("want deadlock error, got %v", err)
	}
}

func TestRunTimeLimit(t *testing.T) {
	k := testKernel(16)
	k.Spawn("forever", ProgramFunc(func(*Kernel, *Process) Op {
		return OpExec{Block: workBlock(100_000)}
	}))
	if err := k.Run(5 * ktime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if k.Now() < ktime.Time(5*ktime.Millisecond) || k.Now() > ktime.Time(6*ktime.Millisecond) {
		t.Errorf("time limit not honored: %v", k.Now())
	}
}

func TestDaemonDoesNotBlockExit(t *testing.T) {
	k := testKernel(17)
	k.SpawnDaemon("daemon", ProgramFunc(func(k *Kernel, p *Process) Op {
		return OpSleep{D: ktime.Millisecond}
	}))
	k.Spawn("main", burner(5, 50_000))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestStoppedThenResumed(t *testing.T) {
	k := testKernel(18)
	p := k.SpawnStopped("stopped", burner(2, 10_000))
	if p.State() != StateStopped {
		t.Fatalf("state %v", p.State())
	}
	k.Spawn("first", burner(2, 10_000))
	k.Resume(p)
	k.Resume(p) // idempotent
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Error("resumed process did not run")
	}
	if p.FirstRun() == 0 && p.Runtime() == 0 {
		t.Error("first-run accounting missing")
	}
}

func TestWakeupPreemption(t *testing.T) {
	k := testKernel(19)
	var ranAt ktime.Time
	wokeAt := ktime.Time(10 * ktime.Millisecond)
	stage := 0
	k.Spawn("sleeper", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			// HR sleep wakes precisely at 10ms (modulo interrupt latency).
			return OpSleep{D: 10 * ktime.Millisecond, HR: true}
		case 1:
			stage = 2
			ranAt = k.Now()
			return OpExit{}
		}
		return OpExit{}
	}))
	k.Spawn("hog", burner(10_000, 100_000))
	if err := k.Run(50 * ktime.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The sleeper must run shortly after its wakeup, not a whole
	// hog-timeslice later.
	if ranAt.Sub(wokeAt) > 500*ktime.Microsecond {
		t.Errorf("wakeup preemption too slow: woke %v ran %v", wokeAt, ranAt)
	}
}

func TestChargeKernelFeedsPMU(t *testing.T) {
	k := testKernel(20)
	pm := k.Core().PMU()
	// Program a branches counter counting kernel-mode only.
	enc := pmu.Encoding{EventSel: 0xC4, Umask: 0x00}
	if err := pm.WriteMSR(pmu.MSRPerfEvtSel0, enc.Sel(pmu.SelOS|pmu.SelEn)); err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteMSR(pmu.MSRGlobalCtrl, 1); err != nil {
		t.Fatal(err)
	}
	k.ChargeKernel(10 * ktime.Microsecond)
	v, _ := pm.ReadMSR(pmu.MSRPmc0)
	if v == 0 {
		t.Error("kernel work produced no counted branches")
	}
	if k.Now() != ktime.Time(10*ktime.Microsecond) {
		t.Errorf("clock %v", k.Now())
	}
}

func TestModuleLifecycle(t *testing.T) {
	k := testKernel(21)
	m := &fakeModule{}
	if err := k.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	if err := k.LoadModule(&fakeModule{}); err == nil {
		t.Error("duplicate module load should fail")
	}
	if _, ok := k.Module("fake"); !ok {
		t.Error("module not registered")
	}
	if err := k.UnloadModule("fake"); err != nil {
		t.Fatal(err)
	}
	if !m.exited {
		t.Error("Exit not called")
	}
	if err := k.UnloadModule("fake"); err == nil {
		t.Error("double unload should fail")
	}
}

type fakeModule struct{ exited bool }

func (m *fakeModule) ModuleName() string   { return "fake" }
func (m *fakeModule) Init(k *Kernel) error { return k.RegisterDevice("fakedev", m.ioctl) }
func (m *fakeModule) Exit(k *Kernel)       { k.UnregisterDevice("fakedev"); m.exited = true }
func (m *fakeModule) ioctl(k *Kernel, p *Process, cmd uint32, arg any) (any, error) {
	return cmd * 2, nil
}

func TestIoctlDispatch(t *testing.T) {
	k := testKernel(22)
	if err := k.LoadModule(&fakeModule{}); err != nil {
		t.Fatal(err)
	}
	var got any
	var gotErr error
	stage := 0
	k.Spawn("ctl", ProgramFunc(func(k *Kernel, p *Process) Op {
		if stage == 0 {
			stage = 1
			return OpSyscall{Name: "ioctl", Fn: func(k *Kernel, p *Process) any {
				res, err := k.Ioctl(p, "fakedev", 21, nil)
				got, gotErr = res, err
				_, missErr := k.Ioctl(p, "nodev", 1, nil)
				if missErr == nil {
					t.Error("ioctl to unknown device should fail")
				}
				return nil
			}}
		}
		return OpExit{}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil || got != uint32(42) {
		t.Errorf("ioctl result %v err %v", got, gotErr)
	}
}

func TestDeviceConflict(t *testing.T) {
	k := testKernel(23)
	if err := k.RegisterDevice("d", func(*Kernel, *Process, uint32, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := k.RegisterDevice("d", nil); err == nil || !strings.Contains(err.Error(), "already") {
		t.Errorf("conflict not detected: %v", err)
	}
}

func TestProcessesListing(t *testing.T) {
	k := testKernel(24)
	k.Spawn("a", burner(1, 1000))
	k.Spawn("b", burner(1, 1000))
	procs := k.Processes()
	if len(procs) != 2 || procs[0].Name() != "a" || procs[1].Name() != "b" {
		t.Errorf("listing wrong: %d", len(procs))
	}
	if _, ok := k.Process(999); ok {
		t.Error("bogus PID resolved")
	}
}

func TestDeterministicKernelRuns(t *testing.T) {
	run := func() ktime.Time {
		k := testKernel(55)
		k.Spawn("a", burner(50, 120_000))
		k.Spawn("b", burner(30, 80_000))
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestTimerJitterWithNoise(t *testing.T) {
	costs := DefaultCosts() // noisy
	k := New(testCPU(30), costs, ktime.NewRand(30), Options{})
	var gaps []ktime.Duration
	var last ktime.Time
	k.StartHRTimer(100*ktime.Microsecond, 100*ktime.Microsecond, func(k *Kernel, tm *HRTimer) bool {
		if last != 0 {
			gaps = append(gaps, k.Now().Sub(last))
		}
		last = k.Now()
		return len(gaps) < 200
	})
	k.Spawn("busy", burner(100_000, 50_000))
	if err := k.Run(40 * ktime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(gaps) < 100 {
		t.Fatalf("too few gaps: %d", len(gaps))
	}
	var sum float64
	for _, g := range gaps {
		sum += float64(g)
	}
	mean := sum / float64(len(gaps))
	if mean < 95e3 || mean > 110e3 {
		t.Errorf("mean gap %.0fns far from 100µs", mean)
	}
	// Jitter exists but stays bounded.
	var varsum float64
	for _, g := range gaps {
		d := float64(g) - mean
		varsum += d * d
	}
	std := varsum / float64(len(gaps))
	if std == 0 {
		t.Error("expected nonzero timer jitter with noisy costs")
	}
}

func TestIntrospection(t *testing.T) {
	k := testKernel(60)
	if err := k.LoadModule(&fakeModule{}); err != nil {
		t.Fatal(err)
	}
	var traced strings.Builder
	stop := k.TraceSyscalls(&traced)
	stage := 0
	k.Spawn("tracer-target", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSyscall{Name: "getpid", Fn: func(*Kernel, *Process) any { return p.PID() }}
		case 1:
			stage = 2
			return OpSleep{D: ktime.Millisecond}
		default:
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	out := traced.String()
	for _, want := range []string{"getpid", "nanosleep", "tracer-target"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	stop()
	// After stop, no further lines are emitted.
	before := traced.Len()
	k2target := k.Spawn("late", ProgramFunc(func(k *Kernel, p *Process) Op {
		return OpExit{}
	}))
	_ = k2target
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if traced.Len() != before {
		t.Error("trace continued after stop")
	}

	var dump strings.Builder
	k.DumpState(&dump)
	for _, want := range []string{"clock", "modules [fake]", "devices [fakedev]", "tracer-target", "PID"} {
		if !strings.Contains(dump.String(), want) {
			t.Errorf("state dump missing %q:\n%s", want, dump.String())
		}
	}
}

func TestWaitpid(t *testing.T) {
	k := testKernel(61)
	var childPID PID
	var resumedAt ktime.Time
	stage := 0
	parent := k.Spawn("parent", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSpawn{Name: "child", Prog: burner(20, 200_000)}
		case 1:
			stage = 2
			childPID, _ = p.SyscallResult.(PID)
			return OpWait{PID: childPID}
		case 2:
			stage = 3
			resumedAt = k.Now()
			return OpExit{}
		}
		return OpExit{}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	child, _ := k.Process(childPID)
	if !child.Exited() || !parent.Exited() {
		t.Fatal("processes did not finish")
	}
	// The parent resumed only after the child's exit, promptly.
	if resumedAt < child.ExitTime() {
		t.Errorf("waitpid returned at %v before child exit %v", resumedAt, child.ExitTime())
	}
	if resumedAt.Sub(child.ExitTime()) > 100*ktime.Microsecond {
		t.Errorf("waitpid wake latency %v", resumedAt.Sub(child.ExitTime()))
	}
	// While waiting, the parent burned no CPU: its user time is tiny.
	if parent.UserTime() > ktime.Millisecond {
		t.Errorf("waiting parent consumed %v of CPU", parent.UserTime())
	}
}

func TestWaitpidOnDeadProcessReturnsImmediately(t *testing.T) {
	k := testKernel(62)
	stage := 0
	var waitedAt, resumedAt ktime.Time
	k.Spawn("w", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			waitedAt = k.Now()
			return OpWait{PID: 999} // never existed
		default:
			resumedAt = k.Now()
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if resumedAt.Sub(waitedAt) > 10*ktime.Microsecond {
		t.Errorf("wait on dead pid took %v", resumedAt.Sub(waitedAt))
	}
}

func TestFilesystem(t *testing.T) {
	k := testKernel(63)
	stage := 0
	k.Spawn("writer", ProgramFunc(func(k *Kernel, p *Process) Op {
		if stage == 0 {
			stage = 1
			return OpSyscall{Name: "write", Fn: func(k *Kernel, p *Process) any {
				for _, w := range []struct {
					path string
					data []byte
				}{
					{"/var/log/a.csv", []byte("hello,")},
					{"/var/log/a.csv", []byte("world")},
					{"/tmp/b", []byte{1, 2, 3}},
				} {
					if err := k.FS().Append(w.path, w.data); err != nil {
						t.Errorf("append %s: %v", w.path, err)
					}
				}
				return nil
			}}
		}
		return OpExit{}
	}))
	before := k.Now()
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Now() == before {
		t.Error("filesystem writes should cost time")
	}
	data, ok := k.FS().ReadFile("/var/log/a.csv")
	if !ok || string(data) != "hello,world" {
		t.Errorf("file contents: %q ok=%v", data, ok)
	}
	if k.FS().Size("/tmp/b") != 3 {
		t.Errorf("size: %d", k.FS().Size("/tmp/b"))
	}
	names := k.FS().Names()
	if len(names) != 2 || names[0] != "/tmp/b" || names[1] != "/var/log/a.csv" {
		t.Errorf("names: %v", names)
	}
	if _, ok := k.FS().ReadFile("/nope"); ok {
		t.Error("missing file resolved")
	}
	if err := k.FS().Remove("/tmp/b"); err != nil {
		t.Fatal(err)
	}
	if err := k.FS().Remove("/tmp/b"); err == nil {
		t.Error("double remove should fail")
	}
}
