package kernel

import (
	"fmt"
	"sort"

	"kleb/internal/fault"
	"kleb/internal/ktime"
)

// FS is the kernel's minimal filesystem: named append-only files backed by
// page-cache-like buffers. It exists because the paper's design point is
// that "hardware event counts are logged to the file system by the
// controller process in user space" — the controller's log is a real
// artifact of a run, not an abstraction, and tests can read it back.
//
// Costs: writes pay a fixed VFS entry price plus a per-byte copy price,
// charged to the calling process's kernel time. Reads are free (post-run
// inspection, not simulated activity).
type FS struct {
	k     *Kernel
	files map[string][]byte
}

// Write costs for the VFS path.
const (
	fsWriteBase    = 3 * ktime.Microsecond
	fsWritePerByte = 700 * ktime.Nanosecond / 512 // ~0.7µs per 512B block
)

func newFS(k *Kernel) *FS {
	return &FS{k: k, files: make(map[string][]byte)}
}

// FS returns the kernel's filesystem.
func (k *Kernel) FS() *FS { return k.fs }

// Append writes data to the end of the named file (creating it), charging
// the VFS cost. It must be called from syscall context. The VFS cost is
// charged even on an injected failure (the kernel did the work of
// rejecting the write); on error nothing is appended.
func (f *FS) Append(name string, data []byte) error {
	f.k.ChargeKernel(fsWriteBase + ktime.Duration(len(data))*fsWritePerByte)
	if err := f.k.faults.FSWriteError(name); err != nil {
		f.k.tel.FaultInjected(f.k.clock.Now(), fault.KindFSWrite)
		return err
	}
	f.files[name] = append(f.files[name], data...)
	return nil
}

// ReadFile returns a file's contents (nil if absent). Free: post-run
// inspection.
func (f *FS) ReadFile(name string) ([]byte, bool) {
	b, ok := f.files[name]
	return b, ok
}

// Size returns a file's length in bytes.
func (f *FS) Size(name string) int { return len(f.files[name]) }

// Names lists all files, sorted.
func (f *FS) Names() []string {
	out := make([]string, 0, len(f.files))
	for name := range f.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a file.
func (f *FS) Remove(name string) error {
	if _, ok := f.files[name]; !ok {
		return fmt.Errorf("fs: no such file %q", name)
	}
	delete(f.files, name)
	return nil
}
