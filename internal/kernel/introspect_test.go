package kernel

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kleb/internal/ktime"
)

var updateGolden = flag.Bool("update", false, "rewrite introspection golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// introspectModule is the smallest module that leaves visible marks in
// DumpState: a loaded-module entry, a device, and one probe of each kind.
type introspectModule struct{}

func (introspectModule) ModuleName() string { return "probe_mod" }

func (introspectModule) Init(k *Kernel) error {
	k.RegisterSwitchProbe(func(k *Kernel, prev, next *Process) {})
	k.RegisterForkProbe(func(k *Kernel, parent, child *Process) {})
	k.RegisterExitProbe(func(k *Kernel, p *Process) {})
	return k.RegisterDevice("probe_mod", func(k *Kernel, p *Process, cmd uint32, arg any) (any, error) {
		return nil, nil
	})
}

func (introspectModule) Exit(k *Kernel) { k.UnregisterDevice("probe_mod") }

// introspectScenario runs a fixed multi-process script: a parent spawns two
// burner children, snapshots DumpState from syscall context (while the
// children sit on the run queue and an HR timer is armed), then waits for
// both and exits. Everything is seeded and noise-free, so the dumps are
// reproducible byte for byte.
func introspectScenario(t *testing.T) (k *Kernel, midRun *bytes.Buffer) {
	t.Helper()
	k = testKernel(42)
	if err := k.LoadModule(introspectModule{}); err != nil {
		t.Fatal(err)
	}
	k.StartHRTimer(ktime.Millisecond, ktime.Millisecond, func(k *Kernel, t *HRTimer) bool { return true })

	midRun = new(bytes.Buffer)
	step := 0
	var kids [2]PID
	parent := ProgramFunc(func(k *Kernel, p *Process) Op {
		step++
		switch step {
		case 1:
			return OpSpawn{Name: "kid-a", Prog: burner(2, 50_000)}
		case 2:
			kids[0], _ = p.SyscallResult.(PID)
			return OpSpawn{Name: "kid-b", Prog: burner(2, 50_000)}
		case 3:
			kids[1], _ = p.SyscallResult.(PID)
			return OpSyscall{Name: "dump", Fn: func(k *Kernel, p *Process) any {
				k.DumpState(midRun)
				return nil
			}}
		case 4:
			return OpWait{PID: kids[0]}
		case 5:
			return OpWait{PID: kids[1]}
		}
		return OpExit{Code: 0}
	})
	k.Spawn("parent", parent)
	return k, midRun
}

func TestDumpStateGolden(t *testing.T) {
	k, midRun := introspectScenario(t)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dump_state_midrun.golden", midRun.Bytes())

	var final bytes.Buffer
	k.DumpState(&final)
	checkGolden(t, "dump_state_final.golden", final.Bytes())
}

func TestDumpProcGolden(t *testing.T) {
	k, _ := introspectScenario(t)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	k.DumpProc(&buf)
	checkGolden(t, "dump_proc.golden", buf.Bytes())
}

func TestTraceSyscallsGolden(t *testing.T) {
	k, _ := introspectScenario(t)
	var trace bytes.Buffer
	stop := k.TraceSyscalls(&trace)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "strace.golden", trace.Bytes())

	// After stop the sink must be detached: re-running a fresh scenario
	// with the same writer appends nothing.
	stop()
	before := trace.Len()
	k2, _ := introspectScenario(t)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if trace.Len() != before {
		t.Error("stop() did not detach the strace sink")
	}
}

// TestTraceSyscallsTwoSinks checks that multiple sinks receive identical
// copies and detach independently.
func TestTraceSyscallsTwoSinks(t *testing.T) {
	k, _ := introspectScenario(t)
	var a, b bytes.Buffer
	stopA := k.TraceSyscalls(&a)
	k.TraceSyscalls(&b)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("strace sinks diverged")
	}
	stopA() // must not disturb b's registration
}
