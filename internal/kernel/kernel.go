// Package kernel implements the simulated operating system kernel the
// reproduction runs on: processes and a round-robin scheduler with
// context-switch costs and cache pollution, jiffy-granularity user timers,
// nanosecond-granularity in-kernel high-resolution timers, kprobes on the
// context-switch/fork/exit paths, a loadable-module and ioctl facility, a
// perf_events-like counter subsystem, and a syscall layer with an explicit
// cost model.
//
// The kernel is a discrete-event engine over the shared virtual clock: the
// current process executes priced instruction blocks until the next event
// (timer expiry, wakeup, end of timeslice), interrupts charge their costs
// and run handlers, and everything that executes feeds the PMU — which is
// how monitoring overhead becomes measurable rather than asserted.
//
// The engine is event-driven end to end: timer expiries and sleeper
// wakeups live in one unified event heap (see event.go) keyed by
// (time, kind, id), the next-event time is cached and refreshed only when
// the heap mutates, and the run queue is a ring-buffer deque — so the
// scheduler loop does no per-iteration scans and, in steady state, no
// allocations.
package kernel

import (
	"errors"
	"fmt"
	"io"

	"kleb/internal/cpu"
	"kleb/internal/fault"
	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/telemetry"
)

// Options selects kernel build-time features.
type Options struct {
	// LiMiTPatch marks the kernel as carrying the LiMiT patch: user-space
	// RDPMC is allowed and counters are virtualized per process on the
	// context-switch path. The stock kernels in the paper's Table III do
	// not have it, which is why LiMiT has no MKL entry there.
	LiMiTPatch bool
}

type pmiEvent struct {
	counter int
	fixed   bool
	raised  ktime.Time
}

// Kernel is one simulated OS instance bound to one core.
type Kernel struct {
	clock *ktime.Clock
	rng   *ktime.Rand
	core  *cpu.Core
	costs CostModel
	opts  Options

	procs   map[PID]*Process
	byPID   []*Process // every process ever spawned, pid-ascending
	nextPID PID
	live    int

	runq     runQueue
	current  *Process
	sliceEnd ktime.Time

	// events is the unified pending-event queue (timer expiries + sleeper
	// wakeups); nextAt/nextOk cache its top so the scheduler loop reads the
	// next-event time without touching the heap. The cache is refreshed
	// only when the heap mutates (arm/cancel/pop).
	events  eventHeap
	nextAt  ktime.Time
	nextOk  bool
	timerID uint64

	// woken and deferred are fireDue's reusable scratch buffers; steady
	// state wakeup batches allocate nothing.
	woken    []*Process
	deferred []*eventNode

	switchProbes []switchProbe
	forkProbes   []forkProbe
	exitProbes   []exitProbe
	probeID      ProbeID

	modules map[string]Module
	devices map[string]IoctlFn

	perf *PerfSubsystem
	fs   *FS

	pmis       []pmiEvent
	pmiDeliver func(counter int, fixed bool)

	// runScale is this boot's correlated cost multiplier (see
	// CostModel.RunNoiseRel).
	runScale float64

	// straceSinks receive syscall trace lines (see TraceSyscalls).
	straceSinks []io.Writer

	// tel is the observability sink (nil = disabled; every emit below is a
	// nil-safe call that compiles to a branch).
	tel *telemetry.Sink

	// faults is the run's fault-injection plan (nil = none; every decision
	// below is a nil-safe call that compiles to a branch, mirroring tel).
	faults *fault.Plan

	idleTime ktime.Duration
}

// ErrDeadlock is returned by Run when live processes remain but nothing can
// ever run again (no runnable process, no sleeper, no timer).
var ErrDeadlock = errors.New("kernel: deadlock: live processes but no pending events")

// New boots a kernel on core with the given cost model. rng seeds all
// scheduling/timing noise.
func New(core *cpu.Core, costs CostModel, rng *ktime.Rand, opts Options) *Kernel {
	k := &Kernel{
		clock:   ktime.NewClock(),
		rng:     rng,
		core:    core,
		costs:   costs,
		opts:    opts,
		procs:   make(map[PID]*Process),
		modules: make(map[string]Module),
		devices: make(map[string]IoctlFn),
	}
	k.perf = newPerfSubsystem(k)
	k.fs = newFS(k)
	core.PMU().SetPMIHandler(func(counter int, fixed bool) {
		k.pmis = append(k.pmis, pmiEvent{counter, fixed, k.clock.Now()})
	})
	k.runScale = 1
	if costs.RunNoiseRel > 0 {
		k.runScale = 1 + costs.RunNoiseRel*k.rng.Norm()
		if k.runScale < 0.7 {
			k.runScale = 0.7
		}
		if k.runScale > 1.3 {
			k.runScale = 1.3
		}
	}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() ktime.Time { return k.clock.Now() }

// Core returns the CPU core this kernel runs on.
func (k *Kernel) Core() *cpu.Core { return k.core }

// Costs returns the kernel's cost model.
func (k *Kernel) Costs() CostModel { return k.costs }

// Rand returns the kernel's noise source.
func (k *Kernel) Rand() *ktime.Rand { return k.rng }

// LiMiTPatched reports whether the LiMiT kernel patch is present.
func (k *Kernel) LiMiTPatched() bool { return k.opts.LiMiTPatch }

// Perf returns the perf_events-like subsystem.
func (k *Kernel) Perf() *PerfSubsystem { return k.perf }

// IdleTime returns accumulated idle time.
func (k *Kernel) IdleTime() ktime.Duration { return k.idleTime }

// SetPMIDeliver installs the PMI second-stage handler (the perf subsystem
// wires itself here; K-LEB does not use PMIs).
func (k *Kernel) SetPMIDeliver(fn func(counter int, fixed bool)) { k.pmiDeliver = fn }

// SetTelemetry attaches an observability sink. All kernel-layer events
// (context switches, timers, kprobes, syscalls, PMIs, ioctls) are stamped
// with virtual time; the PMU's overflow observer is wired here so the pmu
// package stays free of the telemetry dependency. nil detaches.
func (k *Kernel) SetTelemetry(s *telemetry.Sink) {
	k.tel = s
	if s == nil {
		k.core.PMU().SetOverflowObserver(nil)
		return
	}
	k.core.PMU().SetOverflowObserver(func(counter int, fixed bool) {
		s.PMUOverflow(k.clock.Now(), counter, fixed)
	})
}

// Telemetry returns the attached sink (nil when disabled). Modules emit
// their own events through it.
func (k *Kernel) Telemetry() *telemetry.Sink { return k.tel }

// SetFaults installs the run's fault-injection plan (nil disables
// injection). Like SetTelemetry it must be called before the run starts so
// every boundary of the run sees the same plan.
func (k *Kernel) SetFaults(p *fault.Plan) { k.faults = p }

// Faults returns the kernel's fault plan; nil (the common case) means no
// injection, and every decision method on a nil plan is a cheap no-op.
func (k *Kernel) Faults() *fault.Plan { return k.faults }

// Spawn creates a top-level process. It is ready to run immediately.
func (k *Kernel) Spawn(name string, prog Program) *Process {
	return k.spawn(name, prog, 0)
}

// SpawnDaemon creates a background process that does not keep Run alive:
// the simulation ends when every non-daemon process has exited.
func (k *Kernel) SpawnDaemon(name string, prog Program) *Process {
	p := k.spawn(name, prog, 0)
	p.daemon = true
	k.live--
	return p
}

// SpawnStopped creates a process that will not run until Resume is called.
// The monitoring harness uses it to arm a tool before its target executes
// its first instruction (the `tool ./program` launch pattern).
func (k *Kernel) SpawnStopped(name string, prog Program) *Process {
	p := k.spawn(name, prog, 0)
	p.state = StateStopped
	k.runq.PopBack()
	return p
}

// Resume makes a stopped process runnable.
func (k *Kernel) Resume(p *Process) {
	if p.state != StateStopped {
		return
	}
	p.state = StateReady
	p.startTime = k.clock.Now()
	k.runq.PushBack(p)
}

func (k *Kernel) spawn(name string, prog Program, ppid PID) *Process {
	k.nextPID++
	//klebvet:allow hotalloc -- clone allocates a task struct by definition; spawns are workload events, not sampling-period work
	p := &Process{
		pid:       k.nextPID,
		ppid:      ppid,
		name:      name,
		state:     StateReady,
		prog:      prog,
		startTime: k.clock.Now(),
	}
	p.wake = eventNode{kind: evWake, id: uint64(p.pid), index: -1, proc: p}
	k.procs[p.pid] = p
	k.byPID = append(k.byPID, p)
	k.live++
	k.runq.PushBack(p)
	k.tel.ProcessName(int32(p.pid), name)
	return p
}

// Process looks up a process by PID.
func (k *Kernel) Process(pid PID) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// Processes returns all processes ever spawned, in PID order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, len(k.byPID))
	copy(out, k.byPID)
	return out
}

// ChargeKernel charges d (with cost noise) of kernel-privilege work at the
// current instant: the clock advances and synthetic kernel instruction
// activity feeds the PMU, attributed to the current process's kernel time.
func (k *Kernel) ChargeKernel(d ktime.Duration) {
	if d == 0 {
		return
	}
	if k.runScale != 1 {
		d = ktime.Duration(float64(d) * k.runScale)
	}
	if k.costs.NoiseRel > 0 {
		d = k.rng.Jitter(d, k.costs.NoiseRel)
	}
	k.clock.Advance(d)
	if k.current != nil {
		k.current.kernTime += d
	}
	k.core.PMU().AddCounts(kernelCounts(k.core.Config().Freq, d), isa.Kernel)
}

// kernelCounts synthesizes the event activity of d worth of kernel-mode
// housekeeping: IPC ~0.5, a sprinkle of branches. Cache events are not
// synthesized — pollution is modelled directly on the hierarchy.
func kernelCounts(f ktime.Freq, d ktime.Duration) isa.Counts {
	var c isa.Counts
	cyc := f.Cycles(d)
	c[isa.EvCycles] = cyc
	c[isa.EvRefCycles] = cyc
	c[isa.EvInstructions] = cyc / 2
	c[isa.EvBranches] = cyc / 16
	c[isa.EvLoads] = cyc / 8
	c[isa.EvStores] = cyc / 16
	return c
}

// Run drives the simulation until every process has exited, limit virtual
// time has elapsed (limit 0 = no limit), or a deadlock is detected.
func (k *Kernel) Run(limit ktime.Duration) error {
	var deadline ktime.Time
	if limit > 0 {
		deadline = k.clock.Now().Add(limit)
	}
	return k.runUntil(deadline)
}

// RunUntil drives the simulation up to the absolute instant t (or until all
// processes exit). It is the stepping primitive for co-simulating several
// cores against shared hardware: an outer loop advances each core's kernel
// in small lockstep windows so their shared-cache accesses interleave.
func (k *Kernel) RunUntil(t ktime.Time) error {
	if t <= k.clock.Now() {
		return nil
	}
	return k.runUntil(t)
}

// Idle reports whether every non-daemon process has exited.
func (k *Kernel) Idle() bool { return k.live == 0 }

func (k *Kernel) runUntil(deadline ktime.Time) error {
	for {
		k.drainPMIs()
		if k.live == 0 {
			return nil
		}
		if deadline > 0 && !k.clock.Now().Before(deadline) {
			return nil
		}
		now := k.clock.Now()
		next, hasNext := k.nextAt, k.nextOk

		// Fire anything already due.
		if hasNext && next <= now {
			k.fireDue()
			continue
		}

		if k.current == nil {
			if k.runq.Len() > 0 {
				k.schedule()
				continue
			}
			if !hasNext {
				return fmt.Errorf("%w (%d live)", ErrDeadlock, k.live)
			}
			if deadline > 0 && next > deadline {
				k.idleTime += deadline.Sub(now)
				k.clock.AdvanceTo(deadline)
				return nil
			}
			k.idleTime += next.Sub(now)
			k.clock.AdvanceTo(next)
			k.fireDue()
			continue
		}

		// A process is running: find its budget until the next event.
		horizon := k.sliceEnd
		if hasNext && next < horizon {
			horizon = next
		}
		if deadline > 0 && deadline < horizon {
			horizon = deadline
		}
		if horizon <= now {
			// Timeslice expired.
			k.tickSlice()
			continue
		}
		k.runCurrent(horizon.Sub(now))
	}
}

// fireDue processes all events due at the current instant by popping them
// off the unified event queue: timer handlers run first, then sleeper
// wakeups batch into one tick interrupt (which preempts the current
// process). Ordering matches the historical two-phase scan exactly:
//
//   - every timer due at entry time fires in (expiry, id) order, including
//     re-arms that land back inside the window;
//   - sleepers due once the timer handlers have run — their handling may
//     advance the clock — wake in pid order;
//   - timers that became due only because handlers advanced the clock do
//     NOT fire in this round; they are set aside and re-queued for the next
//     loop iteration.
//
//klebvet:hotpath
func (k *Kernel) fireDue() {
	now := k.clock.Now()
	woken := k.woken[:0]
	for k.nextOk && k.nextAt <= now {
		n := k.popEvent()
		if n.kind == evWake {
			woken = append(woken, n.proc)
			continue
		}
		k.fireTimer(n.timer)
	}
	// Timer handlers advanced the clock: sleepers now due join this wakeup
	// batch; newly due timers are deferred to the next round.
	now = k.clock.Now()
	deferred := k.deferred[:0]
	for k.nextOk && k.nextAt <= now {
		n := k.popEvent()
		if n.kind == evWake {
			woken = append(woken, n.proc)
			continue
		}
		deferred = append(deferred, n)
	}
	for _, n := range deferred {
		k.armEvent(n)
	}
	k.deferred = deferred[:0]
	if len(woken) == 0 {
		k.woken = woken
		return
	}
	// The queue yields wakeups in (time, pid) order; the wakeup batch
	// contract is pid order regardless of nominal wake time. Insertion
	// sort: batches are tiny and the scratch must not allocate.
	for i := 1; i < len(woken); i++ {
		p := woken[i]
		j := i - 1
		for j >= 0 && woken[j].pid > p.pid {
			woken[j+1] = woken[j]
			j--
		}
		woken[j+1] = p
	}
	// One tick interrupt delivers all due wakeups. Front-loading in pid
	// order leaves the highest woken pid at the head of the run queue.
	k.ChargeKernel(k.costs.InterruptEntry)
	for _, p := range woken {
		p.state = StateReady
		k.runq.PushFront(p)
		k.tel.SyscallExit(k.clock.Now(), "nanosleep", int32(p.pid))
	}
	k.ChargeKernel(k.costs.InterruptExit)
	k.woken = woken[:0]
	// Wakeup preemption: a freshly woken (sleep-heavy) task takes the CPU,
	// as CFS would grant it. This gives interval-based tools their cadence
	// and charges the monitored process the context switches they cause.
	if k.current != nil {
		k.tickSlice()
	}
}

// schedule switches to the first runnable process.
func (k *Kernel) schedule() {
	k.switchTo(k.runq.PopFront())
}

// tickSlice handles timeslice expiry: round-robin to the next waiter, or
// extend the slice if the current process is alone.
func (k *Kernel) tickSlice() {
	if k.runq.Len() == 0 {
		k.sliceEnd = k.clock.Now().Add(k.costs.Timeslice)
		return
	}
	prev := k.current
	prev.state = StateReady
	k.runq.PushBack(prev)
	// k.current stays set so switchTo sees the true prev for its probes.
	k.schedule()
}

// switchTo performs a context switch to next, charging its costs, firing
// switch probes, and polluting the caches.
func (k *Kernel) switchTo(next *Process) {
	prev := k.current
	if prev == next {
		next.state = StateRunning
		k.sliceEnd = k.clock.Now().Add(k.costs.Timeslice)
		return
	}
	k.current = nil // costs below are switch overhead, not owned by either side
	k.ChargeKernel(k.costs.ContextSwitch)
	k.tel.CtxSwitch(k.clock.Now(), int32(pidOf(prev)), int32(next.pid))
	k.fireSwitchProbes(prev, next)
	k.core.OnContextSwitch(k.costs.PolluteL1, k.costs.PolluteL2, k.costs.PolluteLLC)
	k.current = next
	next.state = StateRunning
	next.switches++
	if !next.ranOnce {
		next.ranOnce = true
		next.firstRun = k.clock.Now()
	}
	k.sliceEnd = k.clock.Now().Add(k.costs.Timeslice)
}

// pidOf returns p's pid, or 0 for nil (the idle task).
func pidOf(p *Process) PID {
	if p == nil {
		return 0
	}
	return p.pid
}

// runCurrent advances the current process by at most budget.
//
//klebvet:hotpath
func (k *Kernel) runCurrent(budget ktime.Duration) {
	p := k.current
	if p.pendingLen() == 0 {
		//klebvet:allow hotalloc -- program step generation is the workload's own code; its cost is charged to the workload, not the sampler
		op := p.prog.Next(k, p)
		if op == nil {
			// A drained program exits directly; assigning OpExit{} to op
			// would box it into the interface on every natural exit.
			k.doExit(p, 0)
			return
		}
		switch op := op.(type) {
		case OpExec:
			if op.Block.Empty() {
				return
			}
			p.pushPending(pendingWork{work: k.executeRun(p, op.Block, budget)})
		case OpSleep:
			k.doSleep(p, op)
			return
		case OpSyscall:
			k.startSyscall(p, op.Name, op.Fn)
		case OpSpawn:
			//klebvet:allow hotalloc -- the clone closure captures the spawn op; spawning is a workload event, not sampling-period work
			k.startSyscall(p, "clone", func(k *Kernel, p *Process) any {
				child := k.spawn(op.Name, op.Prog, p.pid)
				k.fireForkProbes(p, child)
				return child.pid //klebvet:allow hotalloc -- clone's return value boxes the child PID once per spawn, a workload event
			})
		case OpWait:
			k.doWait(p, op.PID)
			return
		case OpExit:
			k.doExit(p, op.Code)
			return
		default:
			//klebvet:allow hotalloc -- unreachable crash path for a malformed program; allocation is irrelevant mid-panic
			panic(fmt.Sprintf("kernel: unknown op %T", op))
		}
		if p.pendingLen() == 0 {
			return
		}
	}
	w := p.frontPending()
	head, tail := w.work.Split(budget)
	k.applyWork(p, head)
	if tail.Empty() {
		done := w.onDone
		p.popPending()
		if done != nil {
			done(k, p) //klebvet:allow hotalloc -- completion callbacks belong to the op that queued them (syscall exit bookkeeping), audited below
		}
	} else {
		w.work = tail
	}
}

// applyWork advances the clock over priced work and feeds the PMU.
func (k *Kernel) applyWork(p *Process, w cpu.Costed) {
	if w.Time == 0 {
		return
	}
	k.clock.Advance(w.Time)
	if w.Priv == isa.User {
		p.userTime += w.Time
	} else {
		p.kernTime += w.Time
	}
	k.core.PMU().AddCounts(w.Counts, w.Priv)
}

// startSyscall queues the entry transition; the handler body runs when the
// entry cost has elapsed, then the exit transition is queued.
func (k *Kernel) startSyscall(p *Process, name string, fn SyscallFn) {
	if len(k.straceSinks) > 0 {
		k.traceSyscall(p, name)
	}
	k.tel.SyscallEnter(k.clock.Now(), name, int32(p.pid))
	entry := cpu.Costed{
		Counts: kernelCounts(k.core.Config().Freq, k.costs.SyscallEntry),
		Time:   k.rng.Jitter(k.costs.SyscallEntry, k.costs.NoiseRel),
		Priv:   isa.Kernel,
	}
	//klebvet:allow hotalloc -- syscall entry/exit continuations allocate per syscall the workload issues, never per HRTimer sample
	p.pushPending(pendingWork{
		work: entry,
		onDone: func(k *Kernel, p *Process) {
			p.SyscallResult = fn(k, p)
			exit := cpu.Costed{
				Counts: kernelCounts(k.core.Config().Freq, k.costs.SyscallExit),
				Time:   k.rng.Jitter(k.costs.SyscallExit, k.costs.NoiseRel),
				Priv:   isa.Kernel,
			}
			ew := pendingWork{work: exit}
			if k.tel != nil {
				ew.onDone = func(k *Kernel, p *Process) {
					k.tel.SyscallExit(k.clock.Now(), name, int32(p.pid))
				}
			}
			p.pushPending(ew)
		},
	})
}

// doSleep blocks p. Jiffy sleeps round the wakeup up to the next jiffy
// boundary — the 10 ms user-timer floor; HR sleeps wake precisely (plus
// interrupt latency jitter). The wakeup is queued as a unified event.
func (k *Kernel) doSleep(p *Process, op OpSleep) {
	if len(k.straceSinks) > 0 {
		k.traceSyscall(p, "nanosleep")
	}
	k.tel.SyscallEnter(k.clock.Now(), "nanosleep", int32(p.pid))
	k.ChargeKernel(k.costs.SyscallEntry)
	target := k.clock.Now().Add(op.D)
	if op.Until != 0 {
		target = op.Until
	}
	if op.HR {
		p.wakeAt = target.Add(k.timerJitter())
	} else {
		j := uint64(k.costs.Jiffy)
		p.wakeAt = ktime.Time((uint64(target) + j - 1) / j * j)
	}
	k.ChargeKernel(k.costs.SyscallExit)
	if p.wakeAt <= k.clock.Now() {
		p.wakeAt = k.clock.Now() + 1
	}
	p.state = StateSleeping
	p.wake.at = p.wakeAt
	k.armEvent(&p.wake)
	k.current = nil
}

// doWait blocks p until the waited-on process exits (waitpid). If it is
// already gone, the caller continues immediately after the syscall cost.
// The wakeup comes from the exit path, not from time, so no event is
// queued.
func (k *Kernel) doWait(p *Process, target PID) {
	if len(k.straceSinks) > 0 {
		k.traceSyscall(p, "waitpid")
	}
	k.tel.SyscallEnter(k.clock.Now(), "waitpid", int32(p.pid))
	k.ChargeKernel(k.costs.SyscallEntry)
	t, ok := k.procs[target]
	if !ok || t.Exited() {
		k.ChargeKernel(k.costs.SyscallExit)
		k.tel.SyscallExit(k.clock.Now(), "waitpid", int32(p.pid))
		return
	}
	p.waitingOn = target
	p.state = StateSleeping
	p.wakeAt = 0 // woken explicitly by the exit path, not by time
	k.current = nil
}

// doExit terminates p: gating hooks see a switch to idle, exit probes fire,
// and the scheduler moves on.
func (k *Kernel) doExit(p *Process, code int) {
	k.ChargeKernel(k.costs.SyscallEntry)
	k.tel.CtxSwitch(k.clock.Now(), int32(p.pid), 0)
	k.fireSwitchProbes(p, nil)
	k.current = nil
	p.state = StateExited
	p.exitCode = code
	p.exitTime = k.clock.Now()
	p.clearPending()
	if !p.daemon {
		k.live--
	}
	k.fireExitProbes(p)
	// Wake any waitpid callers. byPID is pid-ascending, so a single walk
	// wakes them in pid order — the runq and the telemetry stream stay
	// deterministic without collecting or sorting.
	for _, waiter := range k.byPID {
		if waiter.state == StateSleeping && waiter.waitingOn == p.pid {
			waiter.waitingOn = 0
			waiter.state = StateReady
			k.runq.PushBack(waiter)
			k.tel.SyscallExit(k.clock.Now(), "waitpid", int32(waiter.pid))
		}
	}
}

// drainPMIs delivers queued performance-monitoring interrupts. Handler work
// can in principle re-overflow a counter; the loop is bounded to keep a
// misconfigured sampling period from wedging the simulation.
func (k *Kernel) drainPMIs() {
	for round := 0; len(k.pmis) > 0; round++ {
		if round > 64 {
			k.pmis = nil
			return
		}
		q := k.pmis
		k.pmis = nil
		for _, e := range q {
			k.ChargeKernel(k.costs.InterruptEntry)
			now := k.clock.Now()
			k.tel.PMI(now, e.counter, e.fixed, now.Sub(e.raised))
			if k.pmiDeliver != nil {
				k.pmiDeliver(e.counter, e.fixed)
			}
			k.ChargeKernel(k.costs.InterruptExit)
		}
	}
}
