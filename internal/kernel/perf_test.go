package kernel

import (
	"testing"

	"kleb/internal/isa"
	"kleb/internal/ktime"
)

// perfHarness spawns a worker process doing a fixed amount of user work and
// an observer process that opens the given perf events on it before the
// worker starts, reads them after it exits, and exits itself.
type perfHarness struct {
	k      *Kernel
	worker *Process
	blocks int

	finals   []uint64
	enabled  []ktime.Duration
	running  []ktime.Duration
	events   []*PerfEvent
	openErrs []error
}

// expectedWorker is the ground-truth work the harness worker performs.
const (
	workerBlocks   = 100
	workerInstrPer = 200_000
)

func workerTruth() (instr, loads uint64) {
	b := workBlock(workerInstrPer)
	return workerBlocks * b.Instr, workerBlocks * b.Loads
}

func newPerfHarness(t *testing.T, seed uint64, specs []EventSpec) *perfHarness {
	return newPerfHarnessN(t, seed, specs, workerBlocks)
}

// newPerfHarnessN sizes the worker: multiplexing tests use long runs so the
// cold-start transient does not dominate any rotation window.
func newPerfHarnessN(t *testing.T, seed uint64, specs []EventSpec, blocks int) *perfHarness {
	t.Helper()
	h := &perfHarness{k: testKernel(seed), blocks: blocks}
	h.worker = h.k.SpawnStopped("worker", burner(blocks, workerInstrPer))

	opened := 0
	done := false
	h.k.Spawn("observer", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch {
		case opened < len(specs):
			spec := specs[opened]
			opened++
			return OpSyscall{Name: "perf_event_open", Fn: func(k *Kernel, p *Process) any {
				pe, err := k.Perf().Open(h.worker.PID(), spec)
				h.openErrs = append(h.openErrs, err)
				if err == nil {
					h.events = append(h.events, pe)
				}
				return nil
			}}
		case opened == len(specs) && len(h.finals) == 0 && !h.worker.Exited():
			if h.worker.State() == StateStopped {
				k.Resume(h.worker)
			}
			return OpSleep{D: ktime.Millisecond}
		case !done:
			done = true
			return OpSyscall{Name: "read-all", Fn: func(k *Kernel, p *Process) any {
				for _, pe := range h.events {
					v, en, run := k.Perf().Read(pe)
					h.finals = append(h.finals, v)
					h.enabled = append(h.enabled, en)
					h.running = append(h.running, run)
				}
				return nil
			}}
		default:
			return OpExit{}
		}
	}))
	return h
}

func (h *perfHarness) run(t *testing.T) {
	t.Helper()
	if err := h.k.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, err := range h.openErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPerfCountingIsExact(t *testing.T) {
	h := newPerfHarness(t, 40, []EventSpec{
		{Event: isa.EvInstructions, ExcludeKernel: true},
		{Event: isa.EvLoads, ExcludeKernel: true},
	})
	h.run(t)
	wantInstr, wantLoads := workerTruth()
	if h.finals[0] != wantInstr {
		t.Errorf("instructions: got %d want %d", h.finals[0], wantInstr)
	}
	if h.finals[1] != wantLoads {
		t.Errorf("loads: got %d want %d", h.finals[1], wantLoads)
	}
	// No multiplexing: enabled == running.
	if h.enabled[0] != h.running[0] {
		t.Errorf("unexpected multiplexing: enabled=%v running=%v", h.enabled[0], h.running[0])
	}
}

func TestPerfOpenErrors(t *testing.T) {
	k := testKernel(41)
	p := k.Spawn("p", burner(1, 1000))
	if _, err := k.Perf().Open(999, EventSpec{Event: isa.EvLoads}); err == nil {
		t.Error("open on missing pid should fail")
	}
	if _, err := k.Perf().Open(p.PID(), EventSpec{Event: isa.EvLoads, SamplePeriod: 10, SampleFreq: 10}); err == nil {
		t.Error("both sampling modes should fail")
	}
	if _, err := k.Perf().Open(p.PID(), EventSpec{Event: isa.EvMulOps}); err == nil {
		t.Error("event missing from the PMU table should fail")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Perf().Open(p.PID(), EventSpec{Event: isa.EvLoads}); err == nil {
		t.Error("open on exited process should fail")
	}
}

func TestPerfMultiplexingScales(t *testing.T) {
	// Five programmable events on four counters: rotation must multiplex,
	// running < enabled, and enabled/running scaling must keep estimates
	// within a few percent of truth.
	specs := []EventSpec{
		{Event: isa.EvLoads, ExcludeKernel: true},
		{Event: isa.EvStores, ExcludeKernel: true},
		{Event: isa.EvBranches, ExcludeKernel: true},
		{Event: isa.EvLLCMisses, ExcludeKernel: true},
		{Event: isa.EvBranchMisses, ExcludeKernel: true},
	}
	// Long run: the estimate's accuracy assumes the event rate is roughly
	// stationary across rotation windows (the cold-start transient is the
	// multiplexing inaccuracy the paper warns about).
	h := newPerfHarnessN(t, 42, specs, 1500)
	h.run(t)

	multiplexed := false
	for i := range h.events {
		if h.running[i] < h.enabled[i] {
			multiplexed = true
		}
	}
	if !multiplexed {
		t.Fatal("five programmable events on four counters must multiplex")
	}
	wantLoads := uint64(1500) * workBlock(workerInstrPer).Loads
	scaled := float64(h.finals[0]) * float64(h.enabled[0]) / float64(h.running[0])
	off := (scaled - float64(wantLoads)) / float64(wantLoads)
	if off < -0.1 || off > 0.1 {
		t.Errorf("multiplexed loads estimate off by %.1f%% (%f vs %d)", off*100, scaled, wantLoads)
	}
}

func TestPerfSamplingPeriodMode(t *testing.T) {
	const period = 1_000_000
	h := newPerfHarness(t, 43, []EventSpec{
		{Event: isa.EvInstructions, ExcludeKernel: true, SamplePeriod: period},
	})
	h.run(t)
	wantInstr, _ := workerTruth()
	e := h.events[0]
	wantSamples := int(wantInstr / period)
	if got := len(e.Samples()); got < wantSamples-1 || got > wantSamples+1 {
		t.Errorf("samples: got %d want ≈%d", got, wantSamples)
	}
	est := e.SampledCount()
	if est > wantInstr || wantInstr-est > period {
		t.Errorf("sampled count %d vs truth %d (period %d)", est, wantInstr, period)
	}
}

func TestPerfFrequencyModeConverges(t *testing.T) {
	const freq = 5000
	h := newPerfHarness(t, 44, []EventSpec{
		{Event: isa.EvInstructions, ExcludeKernel: true, SampleFreq: freq},
	})
	h.run(t)
	e := h.events[0]
	runtime := h.worker.Runtime().Seconds()
	want := freq * runtime
	got := float64(len(e.Samples()))
	// Frequency mode should land within 3x of the requested rate even with
	// the convergence transient on a short run.
	if got < want/3 || got > want*3 {
		t.Errorf("freq mode: %v samples over %.4fs, want ≈%.0f", got, runtime, want)
	}
	// Count estimate stays near truth: the error is bounded by the final
	// residue (one period) plus the convergence transient.
	wantInstr, _ := workerTruth()
	est := float64(e.SampledCount())
	if est < 0.9*float64(wantInstr) || est > 1.001*float64(wantInstr) {
		t.Errorf("estimate %.0f vs truth %d", est, wantInstr)
	}
}

func TestPerfOverflowCallback(t *testing.T) {
	k := testKernel(45)
	worker := k.SpawnStopped("worker", burner(workerBlocks, workerInstrPer))
	var recs []SampleRecord
	stage := 0
	k.Spawn("observer", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSyscall{Name: "open", Fn: func(k *Kernel, p *Process) any {
				pe, err := k.Perf().Open(worker.PID(), EventSpec{
					Event: isa.EvInstructions, ExcludeKernel: true, SamplePeriod: 2_000_000,
				})
				if err != nil {
					t.Error(err)
					return nil
				}
				k.Perf().SetOverflow(pe, func(k *Kernel, e *PerfEvent, rec SampleRecord) {
					recs = append(recs, rec)
				})
				k.Resume(worker)
				return nil
			}}
		default:
			if !worker.Exited() {
				return OpSleep{D: ktime.Millisecond}
			}
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("overflow callback never fired")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatal("sample timestamps not monotonic")
		}
	}
}

func TestPerfGatingExcludesOtherProcesses(t *testing.T) {
	// Two workers doing identical user work; events attached to the target
	// must count exactly the target's instructions and none of the
	// bystander's, even though they interleave on the CPU.
	k := testKernel(46)
	target := k.SpawnStopped("target", burner(80, workerInstrPer))
	k.Spawn("bystander", burner(80, workerInstrPer))
	var pe *PerfEvent
	var final uint64
	read := false
	stage := 0
	k.Spawn("observer", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSyscall{Name: "open", Fn: func(k *Kernel, p *Process) any {
				var err error
				pe, err = k.Perf().Open(target.PID(), EventSpec{Event: isa.EvInstructions, ExcludeKernel: true})
				if err != nil {
					t.Error(err)
				}
				k.Resume(target)
				return nil
			}}
		default:
			if !target.Exited() {
				return OpSleep{D: ktime.Millisecond}
			}
			if !read {
				read = true
				return OpSyscall{Name: "read", Fn: func(k *Kernel, p *Process) any {
					final, _, _ = k.Perf().Read(pe)
					return nil
				}}
			}
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	want := uint64(80) * workBlock(workerInstrPer).Instr
	if final != want {
		t.Errorf("gating leak: got %d want %d", final, want)
	}
}

func TestPerfCloseStopsCounting(t *testing.T) {
	k := testKernel(47)
	worker := k.SpawnStopped("worker", burner(200, workerInstrPer))
	var pe *PerfEvent
	var atClose, atEnd uint64
	stage := 0
	k.Spawn("observer", ProgramFunc(func(k *Kernel, p *Process) Op {
		switch stage {
		case 0:
			stage = 1
			return OpSyscall{Name: "open", Fn: func(k *Kernel, p *Process) any {
				var err error
				pe, err = k.Perf().Open(worker.PID(), EventSpec{Event: isa.EvInstructions, ExcludeKernel: true})
				if err != nil {
					t.Error(err)
				}
				k.Resume(worker)
				return nil
			}}
		case 1:
			stage = 2
			return OpSleep{D: 10 * ktime.Millisecond}
		case 2:
			stage = 3
			return OpSyscall{Name: "close", Fn: func(k *Kernel, p *Process) any {
				v, _, _ := k.Perf().Read(pe)
				atClose = v
				k.Perf().Close(pe)
				k.Perf().Close(pe) // double close is safe
				return nil
			}}
		default:
			if !worker.Exited() {
				return OpSleep{D: 10 * ktime.Millisecond}
			}
			atEnd, _, _ = pe.value, pe.enabled, pe.running
			return OpExit{}
		}
	}))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if atClose == 0 {
		t.Fatal("no counts before close")
	}
	if atEnd != atClose {
		t.Errorf("counts moved after close: %d -> %d", atClose, atEnd)
	}
}

func TestPerfMultiplexingRotationIsFair(t *testing.T) {
	// Six programmable events on four counters: over a run with many
	// context switches, rotation must spread running time roughly evenly.
	specs := []EventSpec{
		{Event: isa.EvLoads, ExcludeKernel: true},
		{Event: isa.EvStores, ExcludeKernel: true},
		{Event: isa.EvBranches, ExcludeKernel: true},
		{Event: isa.EvLLCMisses, ExcludeKernel: true},
		{Event: isa.EvBranchMisses, ExcludeKernel: true},
		{Event: isa.EvLLCRefs, ExcludeKernel: true},
	}
	h := newPerfHarnessN(t, 48, specs, 1500)
	h.run(t)
	var lo, hi ktime.Duration
	for i := range h.events {
		r := h.running[i]
		if i == 0 || r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		if h.running[i] >= h.enabled[i] {
			t.Errorf("event %d never multiplexed out: running=%v enabled=%v",
				i, h.running[i], h.enabled[i])
		}
	}
	if lo == 0 {
		t.Fatal("an event was never scheduled onto a counter")
	}
	if float64(hi)/float64(lo) > 2.0 {
		t.Errorf("rotation unfair: running times span %v to %v", lo, hi)
	}
}
