package kernel

import (
	"kleb/internal/fault"
	"kleb/internal/ktime"
)

// HRTimerFn is a high-resolution timer callback. It runs in interrupt
// context at (nominal expiry + interrupt latency jitter). Returning true
// re-arms the timer one period later (HRTIMER_RESTART); returning false
// lets it die (HRTIMER_NORESTART).
type HRTimerFn func(k *Kernel, t *HRTimer) bool

// HRTimer is an in-kernel high-resolution timer, the facility that lets
// K-LEB sample at 100µs when user-space timers bottom out at 10ms.
type HRTimer struct {
	id      uint64
	fn      HRTimerFn
	period  ktime.Duration
	nominal ktime.Time // drift-free expiry grid position
	active  bool
	node    eventNode // unified event queue handle; node.at is the jittered expiry
}

// Period returns the timer's period (0 for one-shot).
func (t *HRTimer) Period() ktime.Duration { return t.period }

// Expires returns the effective (jittered) expiry instant.
func (t *HRTimer) Expires() ktime.Time { return t.node.at }

// Active reports whether the timer is armed.
func (t *HRTimer) Active() bool { return t.active }

// StartHRTimer arms a timer firing first at now+delay, then every period if
// period > 0. The arming itself costs TimerProgram. The effective expiry
// includes interrupt-latency jitter, which is resampled on every re-arm —
// this is the jitter the paper warns about for sub-100µs sampling.
func (k *Kernel) StartHRTimer(delay, period ktime.Duration, fn HRTimerFn) *HRTimer {
	t := &HRTimer{}
	k.ArmHRTimer(t, delay, period, fn)
	return t
}

// ArmHRTimer arms a caller-owned timer value, reusing its storage across
// re-arms so a hot caller (the K-LEB switch probe arms on every tracked
// switch-in) allocates nothing — StartHRTimer is the same operation with
// a fresh allocation. Every arm draws a fresh timer id, so the two paths
// produce byte-identical artifacts. An already-armed timer is disarmed
// first.
//
//klebvet:hotpath
func (k *Kernel) ArmHRTimer(t *HRTimer, delay, period ktime.Duration, fn HRTimerFn) {
	// Only an active timer can sit in the event queue; the zero value's
	// node.index is 0, so queued() alone would misread a fresh timer.
	if t.active && t.node.queued() {
		k.cancelEvent(&t.node)
	}
	k.ChargeKernel(k.costs.TimerProgram)
	k.timerID++
	t.id = k.timerID
	t.fn = fn
	t.period = period
	t.nominal = k.clock.Now().Add(delay)
	t.active = true
	t.node = eventNode{kind: evTimer, id: t.id, index: -1, timer: t}
	t.node.at = t.nominal.Add(k.timerJitter())
	k.armEvent(&t.node)
	k.tel.TimerArm(k.clock.Now(), t.id, t.nominal)
}

// CancelHRTimer disarms a timer. Safe to call on an already-expired one.
func (k *Kernel) CancelHRTimer(t *HRTimer) {
	if t == nil || !t.active {
		return
	}
	t.active = false
	k.cancelEvent(&t.node)
	k.ChargeKernel(k.costs.TimerProgram)
	k.tel.TimerCancel(k.clock.Now(), t.id)
}

// timerJitter samples one interrupt-latency delay. An injected jitter
// storm multiplies the base latency 10–100× — the pathological interrupt
// weather the paper warns about at sub-100µs periods.
func (k *Kernel) timerJitter() ktime.Duration {
	j := k.rng.Jitter(k.costs.InterruptLatency, k.costs.TimerJitterRel)
	if extra, storm := k.faults.TimerExtraJitter(j); storm {
		k.tel.FaultInjected(k.clock.Now(), fault.KindJitterStorm)
		j += extra
	}
	return j
}

// fireTimer runs one expired timer: a hardware interrupt charges its
// entry/exit costs, the handler runs in kernel context, and a periodic
// timer is re-armed on its nominal grid so sampling does not drift. The
// caller has already popped the timer's node off the event queue.
//
//klebvet:hotpath
func (k *Kernel) fireTimer(t *HRTimer) {
	if !t.active {
		return
	}
	k.tel.TimerFire(k.clock.Now(), t.id, t.nominal, t.node.at)
	k.ChargeKernel(k.costs.InterruptEntry)
	k.core.InterruptPollute(k.costs.IntPolluteL1)
	restart := false
	if t.fn != nil {
		// Each handler is audited on its own: K-LEB's onTimer carries its
		// own //klebvet:hotpath proof, and the mux-rotation closure runs
		// only for multiplexed contexts, which K-LEB rejects at configure.
		restart = t.fn(k, t) //klebvet:allow hotalloc -- handlers individually verified; see comment above
	}
	// An injected spurious PMI rides the interrupt path: the queued event is
	// delivered (entry/exit costs, telemetry) by the next drainPMIs pass.
	if k.faults.SpuriousPMI() {
		k.tel.FaultInjected(k.clock.Now(), fault.KindSpuriousPMI)
		k.pmis = append(k.pmis, pmiEvent{counter: 0, fixed: false, raised: k.clock.Now()})
	}
	k.ChargeKernel(k.costs.InterruptExit)
	if restart && t.period > 0 {
		t.nominal = t.nominal.Add(t.period)
		// A handler that overran its own period fires next period from
		// now instead of trying to catch up a backlog.
		if !t.nominal.After(k.clock.Now()) {
			t.nominal = k.clock.Now().Add(t.period)
		}
		t.node.at = t.nominal.Add(k.timerJitter())
		k.ChargeKernel(k.costs.TimerProgram)
		k.armEvent(&t.node)
		k.tel.TimerArm(k.clock.Now(), t.id, t.nominal)
	} else {
		t.active = false
	}
}
