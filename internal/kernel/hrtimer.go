package kernel

import (
	"container/heap"

	"kleb/internal/ktime"
)

// HRTimerFn is a high-resolution timer callback. It runs in interrupt
// context at (nominal expiry + interrupt latency jitter). Returning true
// re-arms the timer one period later (HRTIMER_RESTART); returning false
// lets it die (HRTIMER_NORESTART).
type HRTimerFn func(k *Kernel, t *HRTimer) bool

// HRTimer is an in-kernel high-resolution timer, the facility that lets
// K-LEB sample at 100µs when user-space timers bottom out at 10ms.
type HRTimer struct {
	id      uint64
	fn      HRTimerFn
	period  ktime.Duration
	nominal ktime.Time // drift-free expiry grid position
	expires ktime.Time // nominal + sampled latency jitter
	active  bool
	index   int // heap position, -1 when not queued
}

// Period returns the timer's period (0 for one-shot).
func (t *HRTimer) Period() ktime.Duration { return t.period }

// Expires returns the effective (jittered) expiry instant.
func (t *HRTimer) Expires() ktime.Time { return t.expires }

// Active reports whether the timer is armed.
func (t *HRTimer) Active() bool { return t.active }

type timerHeap []*HRTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].expires != h[j].expires {
		return h[i].expires < h[j].expires
	}
	return h[i].id < h[j].id
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*HRTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// StartHRTimer arms a timer firing first at now+delay, then every period if
// period > 0. The arming itself costs TimerProgram. The effective expiry
// includes interrupt-latency jitter, which is resampled on every re-arm —
// this is the jitter the paper warns about for sub-100µs sampling.
func (k *Kernel) StartHRTimer(delay, period ktime.Duration, fn HRTimerFn) *HRTimer {
	k.ChargeKernel(k.costs.TimerProgram)
	k.timerID++
	t := &HRTimer{
		id:      k.timerID,
		fn:      fn,
		period:  period,
		nominal: k.clock.Now().Add(delay),
		index:   -1,
		active:  true,
	}
	t.expires = t.nominal.Add(k.timerJitter())
	heap.Push(&k.timers, t)
	k.tel.TimerArm(k.clock.Now(), t.id, t.nominal)
	return t
}

// CancelHRTimer disarms a timer. Safe to call on an already-expired one.
func (k *Kernel) CancelHRTimer(t *HRTimer) {
	if t == nil || !t.active {
		return
	}
	t.active = false
	if t.index >= 0 {
		heap.Remove(&k.timers, t.index)
	}
	k.ChargeKernel(k.costs.TimerProgram)
	k.tel.TimerCancel(k.clock.Now(), t.id)
}

// timerJitter samples one interrupt-latency delay.
func (k *Kernel) timerJitter() ktime.Duration {
	return k.rng.Jitter(k.costs.InterruptLatency, k.costs.TimerJitterRel)
}

// nextTimerExpiry returns the earliest armed timer expiry, or ok=false.
func (k *Kernel) nextTimerExpiry() (ktime.Time, bool) {
	if len(k.timers) == 0 {
		return 0, false
	}
	return k.timers[0].expires, true
}

// fireTimersDue runs every timer whose effective expiry is ≤ now. Each
// firing is a hardware interrupt: entry/exit costs are charged, the handler
// runs in kernel context, and a periodic timer is re-armed on its nominal
// grid so sampling does not drift.
func (k *Kernel) fireTimersDue() {
	now := k.clock.Now()
	for len(k.timers) > 0 && k.timers[0].expires <= now {
		t := heap.Pop(&k.timers).(*HRTimer)
		if !t.active {
			continue
		}
		k.tel.TimerFire(k.clock.Now(), t.id, t.nominal, t.expires)
		k.ChargeKernel(k.costs.InterruptEntry)
		k.core.Caches().L1D().EvictFraction(k.costs.IntPolluteL1)
		restart := false
		if t.fn != nil {
			restart = t.fn(k, t)
		}
		k.ChargeKernel(k.costs.InterruptExit)
		if restart && t.period > 0 {
			t.nominal = t.nominal.Add(t.period)
			// A handler that overran its own period fires next period from
			// now instead of trying to catch up a backlog.
			if !t.nominal.After(k.clock.Now()) {
				t.nominal = k.clock.Now().Add(t.period)
			}
			t.expires = t.nominal.Add(k.timerJitter())
			k.ChargeKernel(k.costs.TimerProgram)
			heap.Push(&k.timers, t)
			k.tel.TimerArm(k.clock.Now(), t.id, t.nominal)
		} else {
			t.active = false
		}
	}
}
