package kernel

// runQueue is the scheduler's run queue: an index-based ring-buffer deque
// of runnable processes. The previous slice representation paid an O(n)
// copy plus an allocation every time a wakeup front-loaded a task
// (append([]*Process{p}, runq...)); the ring buffer makes PushFront,
// PushBack and both pops O(1) and allocation-free once warm. Capacity is
// kept a power of two so position arithmetic is a mask, and the queue only
// ever grows — process counts are small and bounded per simulation.
type runQueue struct {
	buf  []*Process
	head int // position of the front element when n > 0
	n    int
}

// Len returns the number of queued processes.
func (q *runQueue) Len() int { return q.n }

// At returns the i-th queued process from the front (0-based). The caller
// must keep i < Len.
func (q *runQueue) At(i int) *Process {
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// grow doubles capacity (or makes the initial allocation), re-linearising
// the ring at position 0.
func (q *runQueue) grow() {
	cap := len(q.buf) * 2
	if cap == 0 {
		cap = 8
	}
	//klebvet:allow hotalloc -- amortized capacity doubling; a steady-state run reuses the ring and never reaches here
	buf := make([]*Process, cap)
	for i := 0; i < q.n; i++ {
		buf[i] = q.At(i)
	}
	q.buf = buf
	q.head = 0
}

// PushBack appends p at the tail (round-robin requeue, new spawns).
func (q *runQueue) PushBack(p *Process) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
}

// PushFront prepends p at the head (wakeup front-loading: a freshly woken
// task runs ahead of the round-robin tail, as CFS would grant it).
func (q *runQueue) PushFront(p *Process) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = p
	q.n++
}

// PopFront removes and returns the front process. The queue must be
// non-empty.
func (q *runQueue) PopFront() *Process {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return p
}

// PopBack removes and returns the tail process (used to unqueue a process
// spawned stopped). The queue must be non-empty.
func (q *runQueue) PopBack() *Process {
	i := (q.head + q.n - 1) & (len(q.buf) - 1)
	p := q.buf[i]
	q.buf[i] = nil
	q.n--
	return p
}
