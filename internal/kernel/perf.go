package kernel

import (
	"fmt"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

// This file implements a perf_events-like kernel subsystem: per-process
// counter contexts that are scheduled in and out with the target process,
// time multiplexing when more events are requested than counters exist,
// counting reads with enabled/running times for scaling, and PMI-driven
// sampling with dynamic period adjustment (perf's frequency mode).
//
// perf stat, perf record and PAPI are all built on it, exactly as the real
// tools are built on the Linux perf_events interface. K-LEB deliberately is
// not: it programs the PMU from its own kprobes.

// EventSpec describes one requested hardware event.
type EventSpec struct {
	// Event is the hardware event to count.
	Event isa.Event
	// ExcludeKernel/ExcludeUser select the privilege filter.
	ExcludeKernel bool
	ExcludeUser   bool
	// SamplePeriod enables sampling mode with a fixed overflow period.
	SamplePeriod uint64
	// SampleFreq enables frequency-mode sampling: the kernel adjusts the
	// period to hit approximately this many samples per second. Mutually
	// exclusive with SamplePeriod.
	SampleFreq uint64
}

func (s EventSpec) sampling() bool { return s.SamplePeriod > 0 || s.SampleFreq > 0 }

// SampleRecord is one sampling-mode record (what perf record writes to its
// ring buffer: a timestamp and the period that elapsed).
type SampleRecord struct {
	Time   ktime.Time
	Period uint64
}

// PerfEvent is an open perf event attached to a target process.
type PerfEvent struct {
	id     int
	target *Process
	spec   EventSpec

	fixedIdx int  // fixed-counter index, or -1 for programmable events
	uncore   bool // event counts in the IMC uncore pool
	assigned int  // current counter within the event's pool, or -1

	value    uint64 // accumulated count while descheduled
	lastRead uint64 // counter snapshot at schedule-in / last fold

	// hwSaved preserves a sampling counter's raw value across context
	// switches so the partial progress toward the next overflow is not
	// discarded (counting events fold into value instead).
	hwSaved uint64
	hwValid bool

	enabled ktime.Duration
	running ktime.Duration

	period  uint64 // current sampling period (dynamic in freq mode)
	lastPMI ktime.Time

	samples []SampleRecord

	overflowFn func(k *Kernel, e *PerfEvent, rec SampleRecord)

	closed bool
}

// Samples returns the accumulated sampling records.
func (e *PerfEvent) Samples() []SampleRecord { return e.samples }

// Spec returns the event's specification.
func (e *PerfEvent) Spec() EventSpec { return e.spec }

// SampledCount returns the count estimate sampling mode provides: the sum
// of elapsed periods at each overflow. The residue since the last overflow
// is invisible — the quantization error the paper's Fig 9 attributes to
// perf record.
func (e *PerfEvent) SampledCount() uint64 {
	var total uint64
	for _, s := range e.samples {
		total += s.Period
	}
	return total
}

// PerfSubsystem is the kernel's perf_events implementation.
type PerfSubsystem struct {
	k         *Kernel
	nextID    int
	byPID     map[PID][]*PerfEvent
	rot       map[PID]int // multiplexing rotation offset per target
	sched     map[PID]*pmu.Schedule
	schedIn   map[PID]ktime.Time
	muxTimers map[PID]*HRTimer
	hooked    bool
}

// MuxInterval is the multiplexing rotation period (Linux's default
// perf_event_mux_interval_ms is 4ms): a context with more programmable
// events than hardware counters re-rotates on this timer while its target
// runs, so every event accrues running time even across long timeslices.
const MuxInterval = 4 * ktime.Millisecond

func newPerfSubsystem(k *Kernel) *PerfSubsystem {
	ps := &PerfSubsystem{
		k:         k,
		byPID:     make(map[PID][]*PerfEvent),
		rot:       make(map[PID]int),
		sched:     make(map[PID]*pmu.Schedule),
		schedIn:   make(map[PID]ktime.Time),
		muxTimers: make(map[PID]*HRTimer),
	}
	k.SetPMIDeliver(ps.handlePMI)
	return ps
}

func (ps *PerfSubsystem) ensureHooks() {
	if ps.hooked {
		return
	}
	ps.hooked = true
	ps.k.addSwitchHook(ps.switchHook, true)
}

// The builtin context-switch hook: deschedule the outgoing context, rotate,
// and schedule the incoming one.
func (ps *PerfSubsystem) switchHook(k *Kernel, prev, next *Process) {
	if prev != nil {
		if evs := ps.byPID[prev.pid]; len(evs) > 0 {
			ps.schedOut(prev)
		}
	}
	if next != nil {
		if evs := ps.byPID[next.pid]; len(evs) > 0 {
			ps.schedInCtx(next)
		}
	}
}

// Open attaches an event to target. It must be called from syscall context
// (the perf_event_open path).
func (ps *PerfSubsystem) Open(targetPID PID, spec EventSpec) (*PerfEvent, error) {
	target, ok := ps.k.Process(targetPID)
	if !ok {
		return nil, fmt.Errorf("perf: no such process %d", targetPID)
	}
	if target.Exited() {
		return nil, fmt.Errorf("perf: process %d already exited", targetPID)
	}
	if spec.SamplePeriod > 0 && spec.SampleFreq > 0 {
		return nil, fmt.Errorf("perf: SamplePeriod and SampleFreq are mutually exclusive")
	}
	ps.ensureHooks()
	ps.k.ChargeKernel(ps.k.costs.PerfOpen)
	ps.nextID++
	table := ps.k.core.PMU().Table()
	e := &PerfEvent{
		id:       ps.nextID,
		target:   target,
		spec:     spec,
		fixedIdx: pmu.FixedIndexFor(spec.Event),
		assigned: -1,
		period:   spec.SamplePeriod,
	}
	if d, ok := table.DescFor(spec.Event); ok && d.Unit == pmu.UnitIMC {
		e.uncore = true
	}
	if e.uncore && spec.sampling() {
		return nil, fmt.Errorf("perf: uncore event %v cannot sample (uncore counters raise no PMI)", spec.Event)
	}
	// Validate the extended context against the constraint scheduler: an
	// event the table cannot place on any counter is refused here, not
	// discovered at switch-in.
	evs := append(append([]isa.Event(nil), eventList(ps.byPID[targetPID])...), spec.Event)
	sched, err := table.Schedule(evs)
	if err != nil {
		return nil, fmt.Errorf("perf: event %v not supported by this PMU: %w", spec.Event, err)
	}
	if spec.SampleFreq > 0 {
		// Initial period guess: assume the event fires at ~1GHz-ish rates;
		// the frequency feedback loop converges within a few samples.
		e.period = 1_000_000
		e.lastPMI = ps.k.Now()
	}
	// If the target is running right now, reschedule its context so the new
	// event gets a counter immediately.
	if ps.k.current == target {
		ps.schedOut(target)
		ps.byPID[targetPID] = append(ps.byPID[targetPID], e)
		ps.sched[targetPID] = sched
		ps.schedInCtx(target)
	} else {
		ps.byPID[targetPID] = append(ps.byPID[targetPID], e)
		ps.sched[targetPID] = sched
	}
	return e, nil
}

// eventList projects a context's open events onto their event classes, in
// context order — the request list the scheduler packs.
func eventList(evs []*PerfEvent) []isa.Event {
	out := make([]isa.Event, len(evs))
	for i, e := range evs {
		out[i] = e.spec.Event
	}
	return out
}

// schedule returns the context's cached placement, computing it on demand
// (Open and remove invalidate the cache when the event list changes).
func (ps *PerfSubsystem) schedule(pid PID) *pmu.Schedule {
	if s := ps.sched[pid]; s != nil {
		return s
	}
	s, err := ps.k.core.PMU().Table().Schedule(eventList(ps.byPID[pid]))
	if err != nil {
		// Every event was validated against the scheduler at Open, and
		// removing events never makes a schedulable set unschedulable.
		panic(err)
	}
	ps.sched[pid] = s
	return s
}

// Read returns (count, enabledTime, runningTime) for a counting event. The
// caller scales count by enabled/running to estimate multiplexed events,
// just as user-space perf does. Must run in syscall context.
func (ps *PerfSubsystem) Read(e *PerfEvent) (uint64, ktime.Duration, ktime.Duration) {
	ps.k.ChargeKernel(ps.k.costs.PerfRead)
	if ps.k.current == e.target {
		// Fold the in-flight delta without disturbing scheduling.
		ps.fold(e)
	}
	return e.value, e.enabled, e.running
}

// SetOverflow installs fn to run on each sampling overflow (perf record's
// sample writer).
func (ps *PerfSubsystem) SetOverflow(e *PerfEvent, fn func(k *Kernel, e *PerfEvent, rec SampleRecord)) {
	e.overflowFn = fn
}

// Close detaches the event. Must run in syscall context.
func (ps *PerfSubsystem) Close(e *PerfEvent) {
	if e.closed {
		return
	}
	if ps.k.current == e.target {
		ps.schedOut(e.target)
		e.closed = true
		ps.remove(e)
		ps.schedInCtx(e.target)
		return
	}
	e.closed = true
	ps.remove(e)
}

func (ps *PerfSubsystem) remove(e *PerfEvent) {
	evs := ps.byPID[e.target.pid]
	for i, x := range evs {
		if x == e {
			ps.byPID[e.target.pid] = append(evs[:i], evs[i+1:]...)
			break
		}
	}
	delete(ps.sched, e.target.pid) // the placement is per event list
	if len(ps.byPID[e.target.pid]) == 0 {
		delete(ps.byPID, e.target.pid)
		delete(ps.rot, e.target.pid)
	}
}

// schedInCtx programs the PMU for the target's context from its constraint
// schedule: every switch-in takes the next rotation round, so a
// non-multiplexed context reprograms the same single round each time and an
// oversubscribed one cycles fairly through its rounds.
func (ps *PerfSubsystem) schedInCtx(p *Process) {
	evs := ps.byPID[p.pid]
	if len(evs) == 0 {
		return
	}
	ps.schedIn[p.pid] = ps.k.Now()
	pm := ps.k.core.PMU()
	table := pm.Table()

	sched := ps.schedule(p.pid)
	rot := ps.rot[p.pid]
	ps.rot[p.pid] = rot + 1
	round := sched.Rounds[rot%len(sched.Rounds)]
	var global, fixedCtrl, uncGlobal uint64
	hasUncore := false
	for _, a := range round {
		e := evs[a.Index]
		switch a.Class {
		case pmu.CtrProgrammable:
			enc, _ := table.EncodingFor(e.spec.Event)
			flags := uint64(pmu.SelEn)
			if !e.spec.ExcludeUser {
				flags |= pmu.SelUsr
			}
			if !e.spec.ExcludeKernel {
				flags |= pmu.SelOS
			}
			if e.spec.sampling() {
				flags |= pmu.SelInt
			}
			mustWriteMSR(pm, pmu.MSRPerfEvtSel0+uint32(a.Counter), enc.Sel(flags))
			init := uint64(0)
			if e.spec.sampling() {
				// Restore the saved progress toward the next overflow; arm
				// fresh only on the first schedule-in.
				if e.hwValid {
					init = e.hwSaved
				} else {
					init = pmu.OverflowInit(e.period)
				}
			}
			mustWriteMSR(pm, pmu.MSRPmc0+uint32(a.Counter), init)
			e.assigned = a.Counter
			e.lastRead = init
			global |= 1 << uint(a.Counter)
		case pmu.CtrFixed:
			var nib uint64
			if !e.spec.ExcludeUser {
				nib |= pmu.FixedUsr
			}
			if !e.spec.ExcludeKernel {
				nib |= pmu.FixedOS
			}
			if e.spec.sampling() {
				nib |= pmu.FixedPMI
				init := pmu.OverflowInit(e.period)
				if e.hwValid {
					init = e.hwSaved
				}
				mustWriteMSR(pm, pmu.MSRFixedCtr0+uint32(a.Counter), init)
			}
			fixedCtrl |= nib << uint(4*a.Counter)
			global |= 1 << uint(32+a.Counter)
			cur, _ := pm.ReadMSR(pmu.MSRFixedCtr0 + uint32(a.Counter))
			e.lastRead = cur
			e.assigned = a.Counter
		case pmu.CtrUncore:
			// Uncore counters observe socket-wide traffic at every privilege;
			// the privilege filter does not apply.
			enc, _ := table.EncodingFor(e.spec.Event)
			mustWriteMSR(pm, pmu.MSRUncEvtSel0+uint32(a.Counter), enc.Sel(uint64(pmu.SelEn)))
			mustWriteMSR(pm, pmu.MSRUncPmc0+uint32(a.Counter), 0)
			e.assigned = a.Counter
			e.lastRead = 0
			uncGlobal |= 1 << uint(a.Counter)
			hasUncore = true
		}
		ps.k.ChargeKernel(ps.k.costs.PerfCtxSwitch)
	}
	mustWriteMSR(pm, pmu.MSRFixedCtrCtrl, fixedCtrl)
	mustWriteMSR(pm, pmu.MSRGlobalCtrl, global)
	if hasUncore {
		mustWriteMSR(pm, pmu.MSRUncGlobalCtrl, uncGlobal)
		ps.k.ChargeKernel(ps.k.costs.MSRAccess)
	}
	ps.k.ChargeKernel(ktime.Duration(3) * ps.k.costs.MSRAccess)

	if sched.Multiplexed() {
		ps.k.tel.MuxRotate(ps.k.Now(), int32(p.pid), rot%len(sched.Rounds), len(sched.Rounds), len(round))
	}

	// A multiplexed context re-rotates on the mux timer while it runs.
	if sched.Multiplexed() && ps.muxTimers[p.pid] == nil {
		pid := p.pid
		ps.muxTimers[pid] = ps.k.StartHRTimer(MuxInterval, MuxInterval, func(k *Kernel, t *HRTimer) bool {
			cur := k.current
			if cur == nil || cur.pid != pid {
				// The switch path should have canceled us; die quietly.
				delete(ps.muxTimers, pid)
				return false
			}
			// Rotate: fold and reprogram. schedOut cancels this timer and
			// schedInCtx arms a fresh one.
			ps.schedOut(cur)
			ps.schedInCtx(cur)
			return false
		})
	}
}

// schedOut folds counts and disables the context's counters.
func (ps *PerfSubsystem) schedOut(p *Process) {
	evs := ps.byPID[p.pid]
	if len(evs) == 0 {
		return
	}
	pm := ps.k.core.PMU()
	since := ps.k.Now().Sub(ps.schedIn[p.pid])
	hasUncore := false
	for _, e := range evs {
		e.enabled += since
		if e.uncore {
			hasUncore = true
		}
		if e.assigned >= 0 {
			e.running += since
			if e.spec.sampling() {
				// Preserve raw progress toward the next overflow.
				if e.fixedIdx >= 0 {
					e.hwSaved, _ = pm.ReadMSR(pmu.MSRFixedCtr0 + uint32(e.fixedIdx))
				} else {
					e.hwSaved, _ = pm.ReadMSR(pmu.MSRPmc0 + uint32(e.assigned))
				}
				e.hwValid = true
			} else {
				ps.fold(e)
			}
			e.assigned = -1
		}
		ps.k.ChargeKernel(ps.k.costs.PerfCtxSwitch)
	}
	mustWriteMSR(pm, pmu.MSRGlobalCtrl, 0)
	mustWriteMSR(pm, pmu.MSRFixedCtrCtrl, 0)
	if hasUncore {
		mustWriteMSR(pm, pmu.MSRUncGlobalCtrl, 0)
	}
	ps.schedIn[p.pid] = ps.k.Now()
	if t := ps.muxTimers[p.pid]; t != nil {
		ps.k.CancelHRTimer(t)
		delete(ps.muxTimers, p.pid)
	}
}

// fold accumulates the in-flight hardware delta into e.value.
func (ps *PerfSubsystem) fold(e *PerfEvent) {
	if e.assigned < 0 {
		return
	}
	pm := ps.k.core.PMU()
	var cur uint64
	switch {
	case e.fixedIdx >= 0:
		cur, _ = pm.ReadMSR(pmu.MSRFixedCtr0 + uint32(e.fixedIdx))
	case e.uncore:
		cur, _ = pm.ReadMSR(pmu.MSRUncPmc0 + uint32(e.assigned))
	default:
		cur, _ = pm.ReadMSR(pmu.MSRPmc0 + uint32(e.assigned))
	}
	delta := (cur - e.lastRead) & pmu.CounterMask()
	e.value += delta
	e.lastRead = cur
}

// handlePMI is the second-stage PMI handler: attribute the overflow to the
// owning event, record a sample, adjust the period (frequency mode) and
// re-arm the counter.
func (ps *PerfSubsystem) handlePMI(counter int, fixed bool) {
	cur := ps.k.current
	if cur == nil {
		return
	}
	evs := ps.byPID[cur.pid]
	for _, e := range evs {
		if !e.spec.sampling() {
			continue
		}
		if fixed != (e.fixedIdx >= 0) || e.assigned != counter {
			continue
		}
		ps.k.ChargeKernel(ps.k.costs.PMICapture)
		now := ps.k.Now()
		rec := SampleRecord{Time: now, Period: e.period}
		e.samples = append(e.samples, rec)
		e.value += e.period
		if e.overflowFn != nil {
			e.overflowFn(ps.k, e, rec)
		}
		// Re-arm, carrying over the events that landed after the overflow
		// point (the wrapped counter holds exactly that excess).
		pm := ps.k.core.PMU()
		var excess uint64
		if e.fixedIdx >= 0 {
			excess, _ = pm.ReadMSR(pmu.MSRFixedCtr0 + uint32(e.fixedIdx))
		} else {
			excess, _ = pm.ReadMSR(pmu.MSRPmc0 + uint32(e.assigned))
		}
		// The simulator applies a whole block's counts atomically, so the
		// wrapped counter can hold more than a full period of excess — on
		// hardware those overflows would have fired mid-block. Record the
		// samples hardware would have taken so the count estimate and the
		// frequency feedback both see the true rate.
		pmis := uint64(1)
		for excess >= e.period {
			excess -= e.period
			rec := SampleRecord{Time: now, Period: e.period}
			e.samples = append(e.samples, rec)
			e.value += e.period
			if e.overflowFn != nil {
				e.overflowFn(ps.k, e, rec)
			}
			pmis++
		}
		if e.spec.SampleFreq > 0 {
			e.retunePeriod(now, pmis)
			// Retuning may shrink the period below the leftover excess;
			// consume it against the new period too, or the re-armed value
			// would start past the overflow point and never wrap.
			for excess >= e.period {
				excess -= e.period
				rec := SampleRecord{Time: now, Period: e.period}
				e.samples = append(e.samples, rec)
				e.value += e.period
				if e.overflowFn != nil {
					e.overflowFn(ps.k, e, rec)
				}
			}
		}
		init := pmu.OverflowInit(e.period) + excess
		if e.fixedIdx >= 0 {
			mustWriteMSR(pm, pmu.MSRFixedCtr0+uint32(e.fixedIdx), init)
		} else {
			mustWriteMSR(pm, pmu.MSRPmc0+uint32(e.assigned), init)
		}
		e.lastRead = init
		return
	}
}

// retunePeriod implements perf's frequency mode: nudge the period so
// overflows land every 1/freq seconds of target runtime. pmis is how many
// overflows the interval since the last retune actually contained (block
// atomicity can fold several into one hardware PMI, see handlePMI).
func (e *PerfEvent) retunePeriod(now ktime.Time, pmis uint64) {
	want := ktime.Duration(uint64(ktime.Second) / e.spec.SampleFreq)
	got := now.Sub(e.lastPMI) / ktime.Duration(pmis)
	e.lastPMI = now
	if got == 0 {
		got = 1
	}
	next := uint64(float64(e.period) * float64(want) / float64(got))
	// Blend for stability and clamp to sane bounds.
	next = (e.period + next) / 2
	if next < 1000 {
		next = 1000
	}
	if next > 1<<40 {
		next = 1 << 40
	}
	e.period = next
}

func mustWriteMSR(pm *pmu.PMU, addr uint32, val uint64) {
	if err := pm.WriteMSR(addr, val); err != nil {
		panic(err)
	}
}
