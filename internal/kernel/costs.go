package kernel

import "kleb/internal/ktime"

// CostModel collects every price the simulated kernel charges for
// monitoring-relevant actions. The *mechanisms* (who pays which cost, how
// often) are faithful to the tools being modelled; the magnitudes are
// calibrated so the overhead tables land near the paper's (see DESIGN.md
// §1, "Calibration honesty"). All values are virtual time.
type CostModel struct {
	// SyscallEntry/SyscallExit are the user↔kernel transition costs paid by
	// every system call. PAPI pays these four-plus times per sample; LiMiT
	// exists to avoid them.
	SyscallEntry ktime.Duration
	SyscallExit  ktime.Duration

	// ContextSwitch is the direct cost of switching between two processes
	// (saving/restoring architectural state, scheduler bookkeeping).
	ContextSwitch ktime.Duration

	// InterruptEntry/InterruptExit bracket every hardware interrupt: timer
	// expirations, PMIs and wakeup ticks.
	InterruptEntry ktime.Duration
	InterruptExit  ktime.Duration

	// InterruptLatency is the mean delay between a timer's nominal expiry
	// and its handler running; TimerJitterRel is the relative standard
	// deviation of that delay. Together they bound how precise HRTimer
	// sampling can be (the paper's "do not go below 100µs" guidance).
	InterruptLatency ktime.Duration
	TimerJitterRel   float64

	// TimerProgram is the cost of arming or re-arming a hardware timer.
	TimerProgram ktime.Duration

	// KprobeOverhead is charged per kprobe invocation on the context-switch
	// path (K-LEB attaches its gating logic this way).
	KprobeOverhead ktime.Duration

	// MSRAccess is one RDMSR/WRMSR; RDPMC is the user-mode counter read
	// LiMiT relies on.
	MSRAccess ktime.Duration
	RDPMC     ktime.Duration

	// PerfCtxSwitch is the per-event save/restore the perf_events context
	// adds to every context switch of a monitored process.
	PerfCtxSwitch ktime.Duration

	// PerfOpen is the kernel-side cost of perf_event_open; PerfRead is the
	// kernel-side cost of one counting-mode counter read (IRQ-safe context
	// acquisition, inter-context synchronization, copy-out) — the
	// "expensive system calls" the paper charges PAPI and perf stat with.
	PerfOpen ktime.Duration
	PerfRead ktime.Duration

	// PMICapture is what perf record's overflow handler spends capturing a
	// sample (registers, callchain, timestamp, mmap-buffer write).
	PMICapture ktime.Duration

	// IoctlBase is the fixed handler cost of an ioctl; CopyPerSample is the
	// kernel→user copy cost per monitoring sample drained.
	IoctlBase     ktime.Duration
	CopyPerSample ktime.Duration

	// Timeslice is the scheduler's round-robin quantum; Jiffy is the legacy
	// timer granularity (HZ=100 → 10ms), which is what limits user-space
	// timers — and therefore perf's sampling interval — to 10ms.
	Timeslice ktime.Duration
	Jiffy     ktime.Duration

	// PolluteL1/L2/LLC are the cache fractions lost when the core switches
	// to a different process. IntPolluteL1 is the smaller L1 pollution an
	// interrupt handler inflicts.
	PolluteL1, PolluteL2, PolluteLLC float64
	IntPolluteL1                     float64

	// NoiseRel is the relative jitter applied to every charged cost.
	NoiseRel float64
	// RunNoiseRel is the relative standard deviation of a per-boot global
	// cost multiplier (frequency scaling, thermal state, background load).
	// It correlates all of a run's kernel-side costs, so tools that impose
	// more overhead spread more across runs — the Fig 8 effect.
	RunNoiseRel float64
}

// DefaultCosts returns the calibrated cost model (see DESIGN.md).
func DefaultCosts() CostModel {
	return CostModel{
		SyscallEntry:     300 * ktime.Nanosecond,
		SyscallExit:      250 * ktime.Nanosecond,
		ContextSwitch:    1500 * ktime.Nanosecond,
		InterruptEntry:   900 * ktime.Nanosecond,
		InterruptExit:    500 * ktime.Nanosecond,
		InterruptLatency: 1200 * ktime.Nanosecond,
		TimerJitterRel:   0.25,
		TimerProgram:     200 * ktime.Nanosecond,
		KprobeOverhead:   250 * ktime.Nanosecond,
		MSRAccess:        120 * ktime.Nanosecond,
		RDPMC:            40 * ktime.Nanosecond,
		PerfCtxSwitch:    600 * ktime.Nanosecond,
		PerfOpen:         90 * ktime.Microsecond,
		PerfRead:         45 * ktime.Microsecond,
		PMICapture:       25 * ktime.Microsecond,
		IoctlBase:        800 * ktime.Nanosecond,
		CopyPerSample:    180 * ktime.Nanosecond,
		Timeslice:        4 * ktime.Millisecond,
		Jiffy:            10 * ktime.Millisecond,
		// Pollution fractions are small because the sampled cache model
		// spreads refill cost across the sampling scale factor; these
		// values land the per-switch refill near the ~50µs a real switch
		// costs a cache-resident working set.
		PolluteL1:    0.06,
		PolluteL2:    0.012,
		PolluteLLC:   0.0015,
		IntPolluteL1: 0.008,
		NoiseRel:     0.12,
		RunNoiseRel:  0.06,
	}
}
