package kernel

import (
	"fmt"

	"kleb/internal/cpu"
	"kleb/internal/isa"
	"kleb/internal/ktime"
)

// PID identifies a process.
type PID int

// ProcState is a process's scheduling state.
type ProcState uint8

// Process states.
const (
	StateReady ProcState = iota
	StateRunning
	StateSleeping
	StateStopped
	StateExited
)

func (s ProcState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateStopped:
		return "stopped"
	case StateExited:
		return "exited"
	}
	return fmt.Sprintf("ProcState(%d)", uint8(s))
}

// Program is the behaviour of a simulated process. The kernel calls Next
// whenever the process has finished its previous operation and is about to
// continue executing; Next returns the next operation to perform. Programs
// are state machines driven by the scheduler, which is exactly how the
// monitored workloads, the K-LEB controller and the baseline tools'
// user-space halves are all expressed.
type Program interface {
	Next(k *Kernel, p *Process) Op
}

// ProgramFunc adapts a plain function to the Program interface.
type ProgramFunc func(k *Kernel, p *Process) Op

// Next implements Program.
func (f ProgramFunc) Next(k *Kernel, p *Process) Op { return f(k, p) }

// Op is one operation a program performs. The concrete types below are the
// full set.
type Op interface{ isOp() }

// OpExec executes an instruction block (user or kernel privilege per the
// block).
type OpExec struct{ Block isa.Block }

// OpSleep blocks the process for roughly D — or, when Until is non-zero,
// until the absolute deadline Until (setitimer-style arming, immune to the
// drift a relative sleep accumulates from its own syscall costs). With HR
// false the wakeup is rounded up to the next jiffy boundary — the 10 ms
// floor that constrains user-space timer loops like perf stat's interval
// mode. With HR true the sleep is backed by an in-kernel high-resolution
// timer.
type OpSleep struct {
	D     ktime.Duration
	Until ktime.Time
	HR    bool
}

// OpSyscall enters the kernel: entry/exit transition costs are charged and
// Fn runs in kernel context. Fn may charge additional kernel time through
// Kernel.ChargeKernel (e.g. per-sample copy costs) and its return value is
// stored in Process.SyscallResult for the program's next step.
type OpSyscall struct {
	Name string
	Fn   SyscallFn
}

// SyscallFn is a syscall handler body.
type SyscallFn func(k *Kernel, p *Process) any

// OpSpawn forks a child process running Prog. Fork kprobes fire, which is
// how K-LEB extends monitoring to a process's lineage.
type OpSpawn struct {
	Name string
	Prog Program
}

// OpWait blocks the caller until the process with the given PID exits
// (waitpid semantics). Waiting on an already-exited or unknown PID returns
// immediately.
type OpWait struct{ PID PID }

// OpExit terminates the process.
type OpExit struct{ Code int }

func (OpExec) isOp()    {}
func (OpSleep) isOp()   {}
func (OpSyscall) isOp() {}
func (OpSpawn) isOp()   {}
func (OpWait) isOp()    {}
func (OpExit) isOp()    {}

// pendingWork is priced work queued on a process, with an optional
// completion callback (used to run syscall bodies after their entry cost).
type pendingWork struct {
	work   cpu.Costed
	onDone func(k *Kernel, p *Process)
}

// Process is a simulated process/task.
type Process struct {
	pid  PID
	ppid PID
	name string

	state  ProcState
	prog   Program
	daemon bool

	// pending is the process's queued work, consumed from pendingHead.
	// Pop/push rewind to the start of the backing array whenever the queue
	// drains, so the steady-state execute loop reuses one entry forever
	// instead of allocating per block.
	pending     []pendingWork
	pendingHead int

	wakeAt ktime.Time
	// wake is the process's unified-event-queue node, armed while the
	// process is in a timed sleep (kind evWake, id = pid).
	wake eventNode
	// waitingOn is the PID this process is blocked on (OpWait), 0 if none.
	waitingOn PID

	// SyscallResult holds the return value of the most recent OpSyscall's
	// handler; the program inspects it on its next step.
	SyscallResult any

	// Accounting.
	startTime ktime.Time
	firstRun  ktime.Time
	ranOnce   bool
	exitTime  ktime.Time
	userTime  ktime.Duration
	kernTime  ktime.Duration
	switches  uint64
	exitCode  int
}

// pendingLen returns the number of queued work items.
func (p *Process) pendingLen() int { return len(p.pending) - p.pendingHead }

// pushPending queues w. A drained queue rewinds to the start of its
// backing array first, so pushes stop allocating once the array has grown
// to the process's steady-state depth.
func (p *Process) pushPending(w pendingWork) {
	if p.pendingHead > 0 && p.pendingHead == len(p.pending) {
		p.pending = p.pending[:0]
		p.pendingHead = 0
	}
	p.pending = append(p.pending, w)
}

// frontPending returns the work item at the queue's head. The queue must
// be non-empty.
func (p *Process) frontPending() *pendingWork { return &p.pending[p.pendingHead] }

// popPending drops the head item, releasing its completion closure, and
// rewinds the queue when it drains.
func (p *Process) popPending() {
	p.pending[p.pendingHead] = pendingWork{}
	p.pendingHead++
	if p.pendingHead == len(p.pending) {
		p.pending = p.pending[:0]
		p.pendingHead = 0
	}
}

// clearPending drops all queued work (process exit).
func (p *Process) clearPending() {
	p.pending = nil
	p.pendingHead = 0
}

// PID returns the process identifier.
func (p *Process) PID() PID { return p.pid }

// PPID returns the parent's identifier (0 for top-level processes).
func (p *Process) PPID() PID { return p.ppid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the scheduling state.
func (p *Process) State() ProcState { return p.state }

// Daemon reports whether the process is a background daemon that does not
// keep Kernel.Run alive (OS noise generators, long-lived services).
func (p *Process) Daemon() bool { return p.daemon }

// Exited reports whether the process has terminated.
func (p *Process) Exited() bool { return p.state == StateExited }

// ExitCode returns the exit code (valid once Exited).
func (p *Process) ExitCode() int { return p.exitCode }

// StartTime returns when the process was spawned (or resumed).
func (p *Process) StartTime() ktime.Time { return p.startTime }

// FirstRun returns when the process was first scheduled onto the CPU.
func (p *Process) FirstRun() ktime.Time { return p.firstRun }

// ExitTime returns when the process exited (zero if still alive).
func (p *Process) ExitTime() ktime.Time { return p.exitTime }

// Runtime returns the process's execution wall time: exit minus first
// schedule-in. Queueing delay before the first instruction (e.g. a
// monitoring tool launching ahead of its target) is not the program's
// execution time and is excluded, matching how the paper's overhead
// studies time the monitored program itself.
func (p *Process) Runtime() ktime.Duration {
	if !p.ranOnce {
		return 0
	}
	return p.exitTime.Sub(p.firstRun)
}

// UserTime returns accumulated user-privilege execution time.
func (p *Process) UserTime() ktime.Duration { return p.userTime }

// KernelTime returns accumulated kernel-privilege execution time attributed
// to this process (syscalls it made; not interrupts).
func (p *Process) KernelTime() ktime.Duration { return p.kernTime }

// Switches returns how many times the process was switched in.
func (p *Process) Switches() uint64 { return p.switches }
