//go:build race

package kernel

// raceEnabled reports whether the race detector is compiled in; allocation
// gates skip under it (instrumentation allocates).
const raceEnabled = true
