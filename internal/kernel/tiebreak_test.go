package kernel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"kleb/internal/ktime"
	"kleb/internal/telemetry"
)

// This file pins the kernel's event-ordering semantics at an instant where
// everything collides: a high-resolution timer expiry, two sleeper wakeups
// and the running process's timeslice expiry all landing on the same
// nanosecond. The contract — timers fire first, then simultaneous wakeups
// wake in pid order (front-loading the run queue so the highest woken pid
// runs first), then the preempted process rotates to the back — is what the
// telemetry goldens of the determinism suite are built on, so any event
// queue rewrite must reproduce it byte for byte.

// tieCosts zeroes every charge so event instants are exact: a timer armed
// for T expires at precisely T, an HR sleep with Until=T wakes at precisely
// T, and a timeslice started at t ends at precisely t+Timeslice.
func tieCosts() CostModel {
	return CostModel{
		Timeslice: ktime.Millisecond,
		Jiffy:     10 * ktime.Millisecond,
	}
}

// tieSwitch is one observed context-switch probe firing.
type tieSwitch struct {
	at         ktime.Time
	prev, next PID
}

// tieArtifacts is everything one tie-scenario run produces.
type tieArtifacts struct {
	strace   []byte
	state    []byte
	trace    []byte
	switches []tieSwitch
}

// tieCollisionT is the engineered collision instant: the spinner's second
// slice, the one-shot timer and both sleepers' Until deadlines all end here.
const tieCollisionT = ktime.Time(2 * ktime.Millisecond)

// tieScenario drives the collision and returns the artifacts that pin its
// ordering: the strace text, the final DumpState text, the Chrome trace
// bytes and the switch-probe log.
func tieScenario() (tieArtifacts, error) {
	var out tieArtifacts
	k := New(testCPU(1), tieCosts(), ktime.NewRand(1), Options{})
	sink := telemetry.New()
	k.SetTelemetry(sink)
	var straceBuf bytes.Buffer
	stop := k.TraceSyscalls(&straceBuf)
	defer stop()
	k.RegisterSwitchProbe(func(k *Kernel, prev, next *Process) {
		out.switches = append(out.switches, tieSwitch{k.Now(), pidOf(prev), pidOf(next)})
	})

	// One-shot HR timer expiring exactly at the collision instant.
	k.StartHRTimer(ktime.Duration(tieCollisionT), 0, func(k *Kernel, t *HRTimer) bool { return false })

	// pid 1 spins through its first slice [0, 1ms), is rescheduled at 1ms
	// once both sleepers block, and its second slice ends exactly at T.
	k.Spawn("spinner", burner(4, 4_000_000))
	sleeper := func(name string) {
		step := 0
		k.Spawn(name, ProgramFunc(func(k *Kernel, p *Process) Op {
			step++
			if step == 1 {
				return OpSleep{Until: tieCollisionT, HR: true}
			}
			return OpExit{}
		}))
	}
	sleeper("sleeper-a") // pid 2
	sleeper("sleeper-b") // pid 3

	if err := k.Run(0); err != nil {
		return out, err
	}
	var stateBuf, traceBuf bytes.Buffer
	k.DumpState(&stateBuf)
	if err := sink.WriteChromeTrace(&traceBuf); err != nil {
		return out, err
	}
	out.strace = straceBuf.Bytes()
	out.state = stateBuf.Bytes()
	out.trace = traceBuf.Bytes()
	return out, nil
}

func TestTieBreakOrdering(t *testing.T) {
	const T = tieCollisionT
	art, err := tieScenario()
	if err != nil {
		t.Fatal(err)
	}

	// Extract the switch sequence at the collision instant. The timer fires
	// first (no switch), then the wakeup batch front-loads the run queue in
	// pid order ([3 2] ahead of the preempted spinner), so the rotation at T
	// must run pid 3, then pid 2, then hand back to pid 1.
	var atT []tieSwitch
	for _, s := range art.switches {
		if s.at == T {
			atT = append(atT, s)
		}
	}
	want := []tieSwitch{
		{T, 1, 3}, // wakeup preemption: highest woken pid takes the CPU
		{T, 3, 0}, // pid 3 exits immediately
		{T, 0, 2}, // next woken sleeper
		{T, 2, 0}, // pid 2 exits
		{T, 0, 1}, // the preempted spinner resumes
	}
	if len(atT) != len(want) {
		t.Fatalf("switches at T = %+v, want %+v", atT, want)
	}
	for i := range want {
		if atT[i] != want[i] {
			t.Errorf("switch[%d] at T = %+v, want %+v", i, atT[i], want[i])
		}
	}
}

func TestTieBreakGolden(t *testing.T) {
	art, err := tieScenario()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "tiebreak_strace.golden", art.strace)
	checkGolden(t, "tiebreak_state.golden", art.state)
	checkGolden(t, "tiebreak_trace.golden", art.trace)
}

// TestTieBreakGoldenParallel re-runs the tie scenario on 1, 2 and 8
// concurrent goroutines (the worker counts the session-layer determinism
// suite uses) and requires every copy to reproduce the goldens byte for
// byte: kernels share no mutable state, so the event queue must order
// identically no matter how many siblings run beside it.
func TestTieBreakGoldenParallel(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var wg sync.WaitGroup
			results := make([]tieArtifacts, workers)
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					results[w], errs[w] = tieScenario()
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if errs[w] != nil {
					t.Fatal(errs[w])
				}
				checkGolden(t, "tiebreak_strace.golden", results[w].strace)
				checkGolden(t, "tiebreak_state.golden", results[w].state)
				checkGolden(t, "tiebreak_trace.golden", results[w].trace)
			}
		})
	}
}
