package kernel

import (
	"testing"

	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

// TestRunUntilEquivalence: driving a kernel to completion in many small
// RunUntil windows must produce exactly the same final state as one Run
// call — stepping is a pure re-slicing of the event loop. This is the
// property the multi-core lockstep driver relies on.
func TestRunUntilEquivalence(t *testing.T) {
	build := func() (*Kernel, *Process, *Process) {
		k := testKernel(77)
		a := k.Spawn("a", burner(300, 150_000))
		b := k.Spawn("b", burner(200, 100_000))
		return k, a, b
	}

	k1, a1, b1 := build()
	if err := k1.Run(0); err != nil {
		t.Fatal(err)
	}

	k2, a2, b2 := build()
	for t2 := ktime.Time(500 * ktime.Microsecond); !k2.Idle(); t2 = t2.Add(500 * ktime.Microsecond) {
		if err := k2.RunUntil(t2); err != nil {
			t.Fatal(err)
		}
	}

	if a1.ExitTime() != a2.ExitTime() || b1.ExitTime() != b2.ExitTime() {
		t.Errorf("stepped run diverged: a %v vs %v, b %v vs %v",
			a1.ExitTime(), a2.ExitTime(), b1.ExitTime(), b2.ExitTime())
	}
	if a1.UserTime() != a2.UserTime() {
		t.Errorf("user time diverged: %v vs %v", a1.UserTime(), a2.UserTime())
	}
	if a1.Switches() != a2.Switches() {
		t.Errorf("switch counts diverged: %d vs %d", a1.Switches(), a2.Switches())
	}
}

func TestRunUntilPastInstantIsNoop(t *testing.T) {
	k := testKernel(78)
	k.Spawn("p", burner(10, 100_000))
	if err := k.RunUntil(ktime.Time(ktime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	at := k.Now()
	if err := k.RunUntil(ktime.Time(500 * ktime.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if k.Now() != at {
		t.Error("RunUntil into the past moved the clock")
	}
}

// TestPMIStormGuard: a sampling period so small that the PMI handler's own
// kernel work re-overflows the counter must not wedge the kernel — the
// drain loop is bounded.
func TestPMIStormGuard(t *testing.T) {
	k := testKernel(79)
	pm := k.Core().PMU()
	// Counter 0: branches, OS+USR, PMI on overflow, period 10 — the
	// handler's own synthetic kernel branches re-overflow it immediately.
	enc := pmu.Encoding{EventSel: 0xC4, Umask: 0x00}
	if err := pm.WriteMSR(pmu.MSRPerfEvtSel0, enc.Sel(pmu.SelUsr|pmu.SelOS|pmu.SelInt|pmu.SelEn)); err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteMSR(pmu.MSRPmc0, pmu.OverflowInit(10)); err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteMSR(pmu.MSRGlobalCtrl, 1); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	k.SetPMIDeliver(func(counter int, fixed bool) {
		delivered++
		// A handler that never re-arms: the counter keeps wrapping.
	})
	k.Spawn("p", burner(20, 100_000))
	if err := k.Run(50 * ktime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered == 0 {
		t.Fatal("no PMIs delivered")
	}
	// The process still finished: the storm guard dropped the backlog
	// instead of spinning forever.
	p, _ := k.Process(1)
	if !p.Exited() {
		t.Error("PMI storm wedged the kernel")
	}
}

func TestIdleAccessor(t *testing.T) {
	k := testKernel(80)
	if !k.Idle() {
		t.Error("fresh kernel should be idle")
	}
	k.Spawn("p", burner(1, 1000))
	if k.Idle() {
		t.Error("kernel with a live process is not idle")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !k.Idle() {
		t.Error("kernel should be idle after all processes exit")
	}
}
