package kernel

import (
	"kleb/internal/cpu"
	"kleb/internal/isa"
	"kleb/internal/ktime"
)

// BlockStream is the optional fast-path interface a Program implements when
// it can describe its upcoming ops in run-length form (a compiled workload
// stream, DESIGN.md §13). After Next has returned an OpExec, PeekRun
// reports the block the program would emit next and how many consecutive
// identical copies of it are available — already excluding anything that
// must go through a real Next call (prelude/hook ops, a phase boundary, the
// copy that trips a periodic hook). ConsumeRun(n) then consumes n of those
// copies exactly as n Next calls would, minus the per-call overhead; the
// program must guarantee those calls would have had no side effects beyond
// advancing its position.
type BlockStream interface {
	PeekRun() (isa.Block, uint64)
	ConsumeRun(n uint64)
}

// executeRun prices the OpExec block the current process just emitted,
// batching consecutive identical copies into one priced unit when this is
// provably equivalent to stepping them one by one:
//
//   - the program is a BlockStream and its next avail emissions are the
//     same block (so Next would have returned them anyway);
//   - the copy just executed was a *stable* memo replay
//     (cpu.Core.ExecuteRun), so every batched copy is priced identically
//     and mutates no core state;
//   - the whole batch fits the caller's budget, which already ends at the
//     earliest pending event — no timer, wakeup or slice boundary can land
//     inside the batch (only whole blocks are batched; a block that
//     straddles the horizon is split downstream exactly as before);
//   - the PMU has headroom for the whole batch (pmu.Headroom), so counter
//     overflows and PMIs land on the same block as in the unbatched path.
//
// Under those conditions applyWork(sum) equals n× applyWork(block): the
// clock, user time and (by associativity of modular counter addition) every
// PMU counter see identical values, byte for byte.
//
//klebvet:hotpath
func (k *Kernel) executeRun(p *Process, b isa.Block, budget ktime.Duration) cpu.Costed {
	max := uint64(1)
	bs, streaming := p.prog.(BlockStream)
	if streaming {
		if nb, avail := bs.PeekRun(); avail > 0 && nb == b {
			max += avail
		}
	}
	first, n := k.core.ExecuteRun(b, max)
	if n > 1 && first.Time > 0 {
		if byTime := uint64(budget) / uint64(first.Time); byTime < n {
			n = byTime
		}
	}
	if n > 1 {
		n = k.core.PMU().Headroom(first.Counts, first.Priv, n)
	}
	if n <= 1 {
		return first
	}
	k.core.AdvanceReplays(b, n-1)
	bs.ConsumeRun(n - 1)
	return cpu.Costed{
		Counts: first.Counts.Mul(n),
		Time:   first.Time * ktime.Duration(n),
		Priv:   first.Priv,
	}
}

// NextEventAt returns the earliest pending event (timer expiry or sleeper
// wakeup), if any. It reads the cached heap top, so co-simulation drivers
// can poll it per window for free.
func (k *Kernel) NextEventAt() (ktime.Time, bool) { return k.nextAt, k.nextOk }

// Runnable reports whether any process could execute right now. A kernel
// that is not runnable can only be woken by a pending event, so a driver
// may fast-forward it to NextEventAt in one jump (idle time accumulates
// identically either way).
func (k *Kernel) Runnable() bool { return k.current != nil || k.runq.Len() > 0 }
