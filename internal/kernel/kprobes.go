package kernel

// This file implements the kernel's dynamic instrumentation hooks. K-LEB's
// central trick — gating counter collection on the scheduler's context
// switch handler without patching the kernel — is expressed as kprobes on
// the switch path plus probes on fork and exit for lineage tracking.

// SwitchFn observes a context switch from prev to next. Either may be nil
// (switch from/to idle).
type SwitchFn func(k *Kernel, prev, next *Process)

// ForkFn observes process creation.
type ForkFn func(k *Kernel, parent, child *Process)

// ExitFn observes process termination.
type ExitFn func(k *Kernel, p *Process)

// ProbeID identifies a registered probe for unregistration.
type ProbeID int

type switchProbe struct {
	id ProbeID
	fn SwitchFn
	// builtin hooks (the perf_events context switch path) do not pay the
	// kprobe trampoline cost; module-attached probes do.
	builtin bool
}

type forkProbe struct {
	id ProbeID
	fn ForkFn
}

type exitProbe struct {
	id ProbeID
	fn ExitFn
}

// RegisterSwitchProbe attaches a kprobe to the context-switch handler.
func (k *Kernel) RegisterSwitchProbe(fn SwitchFn) ProbeID {
	return k.addSwitchHook(fn, false)
}

// RegisterBuiltinSwitchHook attaches a switch hook with kernel-patch
// semantics: the code is compiled into the switch path, so no kprobe
// trampoline cost is charged. The LiMiT patch's per-process counter
// virtualization uses this.
func (k *Kernel) RegisterBuiltinSwitchHook(fn SwitchFn) ProbeID {
	return k.addSwitchHook(fn, true)
}

func (k *Kernel) addSwitchHook(fn SwitchFn, builtin bool) ProbeID {
	k.probeID++
	k.switchProbes = append(k.switchProbes, switchProbe{id: k.probeID, fn: fn, builtin: builtin})
	return k.probeID
}

// UnregisterSwitchProbe removes a previously registered switch probe.
func (k *Kernel) UnregisterSwitchProbe(id ProbeID) {
	for i, p := range k.switchProbes {
		if p.id == id {
			k.switchProbes = append(k.switchProbes[:i], k.switchProbes[i+1:]...)
			return
		}
	}
}

// RegisterForkProbe attaches a probe to process creation.
func (k *Kernel) RegisterForkProbe(fn ForkFn) ProbeID {
	k.probeID++
	k.forkProbes = append(k.forkProbes, forkProbe{id: k.probeID, fn: fn})
	return k.probeID
}

// UnregisterForkProbe removes a fork probe.
func (k *Kernel) UnregisterForkProbe(id ProbeID) {
	for i, p := range k.forkProbes {
		if p.id == id {
			k.forkProbes = append(k.forkProbes[:i], k.forkProbes[i+1:]...)
			return
		}
	}
}

// RegisterExitProbe attaches a probe to process termination.
func (k *Kernel) RegisterExitProbe(fn ExitFn) ProbeID {
	k.probeID++
	k.exitProbes = append(k.exitProbes, exitProbe{id: k.probeID, fn: fn})
	return k.probeID
}

// UnregisterExitProbe removes an exit probe.
func (k *Kernel) UnregisterExitProbe(id ProbeID) {
	for i, p := range k.exitProbes {
		if p.id == id {
			k.exitProbes = append(k.exitProbes[:i], k.exitProbes[i+1:]...)
			return
		}
	}
}

func (k *Kernel) fireSwitchProbes(prev, next *Process) {
	for _, p := range k.switchProbes {
		if !p.builtin {
			k.ChargeKernel(k.costs.KprobeOverhead)
			k.tel.Kprobe(k.clock.Now(), "switch", int32(pidOf(next)))
		}
		if p.fn != nil {
			p.fn(k, prev, next) //klebvet:allow hotalloc -- probe callbacks are audited at their definitions (K-LEB's onSwitch is hotpath-proved); modules own their probe cost
		}
	}
}

func (k *Kernel) fireForkProbes(parent, child *Process) {
	for _, p := range k.forkProbes {
		k.ChargeKernel(k.costs.KprobeOverhead)
		k.tel.Kprobe(k.clock.Now(), "fork", int32(child.pid))
		if p.fn != nil {
			p.fn(k, parent, child) //klebvet:allow hotalloc -- fork probes fire per clone, a workload event; K-LEB's onFork is audited at its definition
		}
	}
}

func (k *Kernel) fireExitProbes(proc *Process) {
	for _, p := range k.exitProbes {
		k.ChargeKernel(k.costs.KprobeOverhead)
		k.tel.Kprobe(k.clock.Now(), "exit", int32(proc.pid))
		if p.fn != nil {
			p.fn(k, proc) //klebvet:allow hotalloc -- exit probes fire per process exit, a workload event; K-LEB's onExit is audited at its definition
		}
	}
}
