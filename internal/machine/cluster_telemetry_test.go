package machine

import (
	"bytes"
	"testing"

	"kleb/internal/ktime"
	"kleb/internal/telemetry"
)

// runInstrumentedCluster boots a 2-core cluster, optionally attaches one
// sink per core, runs the standard two-worker workload and returns the
// cores' exit times (the determinism witness) plus the sinks.
func runInstrumentedCluster(t *testing.T, seed uint64, instrument bool) ([2]ktime.Time, []*telemetry.Sink) {
	t.Helper()
	c := BootCluster(quiet(), seed, 2)
	var sinks []*telemetry.Sink
	if instrument {
		sinks = []*telemetry.Sink{telemetry.New(), telemetry.New()}
		c.SetTelemetry(sinks)
	}
	pa := c.Cores()[0].Kernel().Spawn("a", busyProg(60, 0x1000_0000, 1<<20))
	pb := c.Cores()[1].Kernel().Spawn("b", busyProg(80, 0x2000_0000, 2<<20))
	if err := c.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if !pa.Exited() || !pb.Exited() {
		t.Fatal("workloads did not finish")
	}
	return [2]ktime.Time{pa.ExitTime(), pb.ExitTime()}, sinks
}

// TestClusterTelemetryObserverEffectFree proves attaching sinks to every
// core changes nothing about the simulation: exit times are identical with
// and without instrumentation (the cluster equivalent of the single-machine
// zero-perturbation guarantee).
func TestClusterTelemetryObserverEffectFree(t *testing.T) {
	plain, _ := runInstrumentedCluster(t, 11, false)
	instr, sinks := runInstrumentedCluster(t, 11, true)
	if plain != instr {
		t.Errorf("telemetry perturbed the cluster: exits %v (nil sink) vs %v (instrumented)", plain, instr)
	}
	for i, s := range sinks {
		if s.Registry().CtxSwitches.Value() == 0 {
			t.Errorf("core %d sink observed nothing", i)
		}
	}
}

// TestClusterTelemetryDeterminism: same seed, two boots, per-core traces
// and metrics byte-identical.
func TestClusterTelemetryDeterminism(t *testing.T) {
	_, a := runInstrumentedCluster(t, 12, true)
	_, b := runInstrumentedCluster(t, 12, true)
	for i := range a {
		var ta, tb, pa, pb bytes.Buffer
		if err := a[i].WriteChromeTrace(&ta); err != nil {
			t.Fatal(err)
		}
		if err := b[i].WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
			t.Errorf("core %d trace differs across identical boots", i)
		}
		if err := a[i].WritePrometheus(&pa); err != nil {
			t.Fatal(err)
		}
		if err := b[i].WritePrometheus(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
			t.Errorf("core %d metrics differ across identical boots", i)
		}
	}
}

// TestClusterTelemetryMergesCommutatively folds the per-core registries in
// both orders and demands byte-identical exposition — the property the
// fleet aggregator's shard merges rest on.
func TestClusterTelemetryMergesCommutatively(t *testing.T) {
	_, sinks := runInstrumentedCluster(t, 13, true)
	fold := func(order []int) *bytes.Buffer {
		total := telemetry.MetricsOnly()
		for _, i := range order {
			if err := total.Merge(sinks[i]); err != nil {
				t.Fatalf("merge core %d: %v", i, err)
			}
		}
		var buf bytes.Buffer
		if err := total.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	fwd, rev := fold([]int{0, 1}), fold([]int{1, 0})
	if !bytes.Equal(fwd.Bytes(), rev.Bytes()) {
		t.Errorf("core merge order changed the aggregate:\n%s\nvs\n%s", fwd.String(), rev.String())
	}
	if err := telemetry.LintExposition(bytes.NewReader(fwd.Bytes())); err != nil {
		t.Errorf("cluster aggregate fails exposition lint: %v", err)
	}
}

// TestClusterTelemetryShortSinkSlice: a sink slice shorter than the core
// count instruments only the covered cores.
func TestClusterTelemetryShortSinkSlice(t *testing.T) {
	c := BootCluster(quiet(), 14, 2)
	s := telemetry.MetricsOnly()
	c.SetTelemetry([]*telemetry.Sink{s})
	c.Cores()[0].Kernel().Spawn("a", busyProg(10, 0x1000_0000, 1<<20))
	c.Cores()[1].Kernel().Spawn("b", busyProg(10, 0x2000_0000, 1<<20))
	if err := c.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if s.Registry().CtxSwitches.Value() == 0 {
		t.Error("covered core not instrumented")
	}
}
