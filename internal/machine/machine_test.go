package machine

import (
	"testing"

	"kleb/internal/isa"
)

func TestProfilesAreWellFormed(t *testing.T) {
	for _, prof := range []Profile{Nehalem(), CascadeLake(), LiMiTKernel()} {
		t.Run(prof.Name, func(t *testing.T) {
			for _, c := range []struct {
				name string
				err  error
			}{
				{"L1D", prof.CPU.Hierarchy.L1D.Validate()},
				{"L2", prof.CPU.Hierarchy.L2.Validate()},
				{"LLC", prof.CPU.Hierarchy.LLC.Validate()},
			} {
				if c.err != nil {
					t.Errorf("%s: %v", c.name, c.err)
				}
			}
			if prof.CPU.Freq.Hz == 0 {
				t.Error("zero frequency")
			}
			if prof.CPU.BaseCPI <= 0 {
				t.Error("non-positive CPI")
			}
			if len(prof.Events.Descs()) == 0 {
				t.Error("empty event table")
			}
			if prof.Costs.Jiffy == 0 || prof.Costs.Timeslice == 0 {
				t.Error("degenerate cost model")
			}
		})
	}
}

func TestProfilesCoverCoreEvents(t *testing.T) {
	needed := []isa.Event{
		isa.EvLoads, isa.EvStores, isa.EvBranches, isa.EvBranchMisses,
		isa.EvLLCRefs, isa.EvLLCMisses,
	}
	for _, prof := range []Profile{Nehalem(), CascadeLake()} {
		for _, ev := range needed {
			if _, ok := prof.Events.EncodingFor(ev); !ok {
				t.Errorf("%s: missing encoding for %v", prof.Name, ev)
			}
		}
	}
	// ARITH.MUL exists on Nehalem but not on Cascade Lake (the paper's §VI
	// portability caveat).
	if _, ok := Nehalem().Events.EncodingFor(isa.EvMulOps); !ok {
		t.Error("Nehalem should expose ARITH.MUL")
	}
	if _, ok := CascadeLake().Events.EncodingFor(isa.EvMulOps); ok {
		t.Error("Cascade Lake should not expose ARITH.MUL")
	}
}

func TestLiMiTKernelFlag(t *testing.T) {
	if Nehalem().Kernel.LiMiTPatch {
		t.Error("stock kernel must not carry the LiMiT patch")
	}
	if !LiMiTKernel().Kernel.LiMiTPatch {
		t.Error("LiMiT kernel must carry the patch")
	}
}

func TestBootWiring(t *testing.T) {
	m := Boot(Nehalem(), 5)
	if m.Core() == nil || m.Kernel() == nil {
		t.Fatal("boot left nil components")
	}
	if m.Kernel().Core() != m.Core() {
		t.Error("kernel not bound to the machine's core")
	}
	if m.Profile().Name != "nehalem-i7-920" {
		t.Errorf("profile: %s", m.Profile().Name)
	}
	if m.Kernel().LiMiTPatched() {
		t.Error("patch flag leaked")
	}
	if Boot(LiMiTKernel(), 5).Kernel().LiMiTPatched() != true {
		t.Error("patch flag not plumbed")
	}
}

func TestDistinctMachinesDifferInLLC(t *testing.T) {
	n, c := Nehalem(), CascadeLake()
	if n.CPU.Hierarchy.LLC.Size >= c.CPU.Hierarchy.LLC.Size {
		t.Error("Cascade Lake should have the larger LLC")
	}
	if n.CPU.Freq == c.CPU.Freq {
		t.Error("profiles should differ in frequency")
	}
}
