package machine

import (
	"kleb/internal/cache"
	"kleb/internal/cpu"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
	"kleb/internal/telemetry"
)

// Cluster is a multi-core socket: one Machine per core, each with a private
// L1/L2, branch predictor, PMU and OS instance, all contending for one
// shared last-level cache. An outer lockstep loop co-simulates the cores so
// their LLC accesses interleave — the substrate for the co-location
// scheduling study motivated by the paper's §IV-B ("the scheduler can
// colocate computation-intensive programs or containers with the
// memory-intensive ones on the same core, while scheduling the programs
// that require the same type of resources on different cores").
type Cluster struct {
	prof  Profile
	cores []*Machine
	llc   *cache.Cache
}

// BootCluster builds n cores around one shared LLC.
func BootCluster(prof Profile, seed uint64, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	root := ktime.NewRand(seed)
	llc := cache.New(prof.CPU.Hierarchy.LLC)
	c := &Cluster{prof: prof, llc: llc}
	for i := 0; i < n; i++ {
		p := pmu.New(prof.Events)
		core := cpu.NewShared(prof.CPU, p, root.Split(), llc)
		kern := kernel.New(core, prof.Costs, root.Split(), prof.Kernel)
		c.cores = append(c.cores, &Machine{prof: prof, core: core, kern: kern})
	}
	return c
}

// Cores returns the per-core machines.
func (c *Cluster) Cores() []*Machine { return c.cores }

// SetTelemetry attaches one observability sink per core: sinks[i] observes
// core i (nil entries and a short slice leave the remaining cores
// uninstrumented). Cores get separate sinks rather than one shared sink so
// each stays single-owner per the telemetry contract; fold the per-core
// registries with Sink.Merge — commutative, so a cluster aggregate is
// independent of core order. Must be called before Run starts.
func (c *Cluster) SetTelemetry(sinks []*telemetry.Sink) {
	for i, s := range sinks {
		if i >= len(c.cores) {
			return
		}
		c.cores[i].Kernel().SetTelemetry(s)
	}
}

// SharedLLC returns the socket's last-level cache.
func (c *Cluster) SharedLLC() *cache.Cache { return c.llc }

// DefaultQuantum is the lockstep window for co-simulation: small enough
// that cross-core LLC contention interleaves at sub-timeslice granularity,
// large enough to keep stepping overhead negligible.
const DefaultQuantum = 100 * ktime.Microsecond

// Run co-simulates every core in lockstep windows of quantum (0 selects
// DefaultQuantum) until all cores are idle or limit virtual time has passed
// on every core (limit 0 = no limit). Within each window the cores advance
// independently; across windows their clocks stay within one quantum of
// each other, so shared-LLC interference is modeled at that granularity.
func (c *Cluster) Run(quantum, limit ktime.Duration) error {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	var deadline ktime.Time
	if limit > 0 {
		deadline = ktime.Time(limit)
	}
	for t := ktime.Time(quantum); ; t = t.Add(quantum) {
		anyAlive := false
		for _, m := range c.cores {
			if m.Kernel().Idle() {
				continue
			}
			anyAlive = true
			if err := m.Kernel().RunUntil(t); err != nil {
				return err
			}
		}
		if !anyAlive {
			return nil
		}
		if deadline > 0 && t >= deadline {
			return nil
		}
		// Idle fast-forward: when no core can run, nothing happens until the
		// earliest pending event, so the intervening lockstep windows are
		// pure clock advances — skip them in one jump. The jump lands on the
		// last grid point strictly before the event (capped at the deadline),
		// so the window boundaries after wake-up, and with them the shared-LLC
		// interleaving, match the unbatched schedule exactly; each kernel's
		// idle time telescopes to the same sum either way.
		if next, ok := c.idleUntil(); ok {
			if deadline > 0 && next > deadline {
				next = deadline
			}
			if next > t.Add(quantum) {
				// Skip every whole window that ends before next; the loop's
				// increment then lands on the first grid point ≥ next.
				steps := uint64(next.Sub(t)-1) / uint64(quantum)
				t = t.Add(ktime.Duration(steps) * quantum)
			}
		}
	}
}

// idleUntil returns the earliest pending event across all live cores, but
// only when none of them is runnable — a runnable core can mutate shared
// state inside any window, so no window may be skipped.
func (c *Cluster) idleUntil() (ktime.Time, bool) {
	var best ktime.Time
	ok := false
	for _, m := range c.cores {
		k := m.Kernel()
		if k.Idle() {
			continue
		}
		if k.Runnable() {
			return 0, false
		}
		at, has := k.NextEventAt()
		if !has {
			continue
		}
		if !ok || at < best {
			best, ok = at, true
		}
	}
	return best, ok
}
