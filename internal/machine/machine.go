// Package machine assembles a complete simulated system — CPU core, PMU,
// caches, kernel — from a hardware profile. Two profiles mirror the paper's
// testbeds: the local Intel Core i7-920 ("Nehalem") and the AWS Xeon
// Platinum 8259CL ("Cascade Lake"), plus a LiMiT-patched legacy kernel
// matching the paper's Ubuntu 12.04 / 2.6.32 setup.
package machine

import (
	"kleb/internal/cache"
	"kleb/internal/cpu"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

// Profile is a full hardware + kernel configuration.
type Profile struct {
	// Name is a short identifier ("nehalem-i7-920").
	Name string
	// CPUModel is the marketing name used in reports.
	CPUModel string
	// CPU parameterizes the core model (frequency, CPI, caches...).
	CPU cpu.Config
	// Events is this microarchitecture's generated event table: encodings,
	// counter constraints and uncore units. Events missing here cannot be
	// counted on it.
	Events *pmu.EventTable
	// Costs is the kernel cost model.
	Costs kernel.CostModel
	// Kernel selects kernel features (e.g. the LiMiT patch).
	Kernel kernel.Options
}

// Nehalem returns the paper's local testbed: Intel Core i7-920 @ 2.67 GHz,
// Ubuntu 16.04-era stock kernel.
func Nehalem() Profile {
	return Profile{
		Name:     "nehalem-i7-920",
		CPUModel: "Intel Core i7-920 @ 2.67GHz",
		CPU: cpu.Config{
			Freq:              ktime.MHz(2670),
			BaseCPI:           0.45,
			BranchMissPenalty: 17,
			FlushCycles:       60,
			PrefetchMemCycles: 28,
			Hierarchy: cache.HierarchyConfig{
				L1D:              cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8, LatencyCycles: 4},
				L2:               cache.Config{Name: "L2", Size: 256 << 10, LineSize: 64, Ways: 8, LatencyCycles: 10},
				LLC:              cache.Config{Name: "LLC", Size: 8 << 20, LineSize: 64, Ways: 16, LatencyCycles: 38},
				MemLatencyCycles: 190,
			},
			PredictorBits:  12,
			MaxSimAccesses: 768,
		},
		Events: pmu.MustTable("nehalem"),
		Costs:  kernel.DefaultCosts(),
	}
}

// CascadeLake returns the paper's AWS validation machine: Xeon Platinum
// 8259CL @ 2.50 GHz. The LLC here stands in for one socket's share; its
// size is rounded to the nearest power-of-two set count the simulator
// supports (the paper only relies on it being much larger than Nehalem's).
func CascadeLake() Profile {
	p := Profile{
		Name:     "cascadelake-8259cl",
		CPUModel: "Intel Xeon Platinum 8259CL @ 2.50GHz",
		CPU: cpu.Config{
			Freq:              ktime.MHz(2500),
			BaseCPI:           0.38,
			BranchMissPenalty: 16,
			FlushCycles:       55,
			PrefetchMemCycles: 22,
			Hierarchy: cache.HierarchyConfig{
				L1D:              cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8, LatencyCycles: 4},
				L2:               cache.Config{Name: "L2", Size: 1 << 20, LineSize: 64, Ways: 16, LatencyCycles: 14},
				LLC:              cache.Config{Name: "LLC", Size: 32 << 20, LineSize: 64, Ways: 16, LatencyCycles: 44},
				MemLatencyCycles: 220,
			},
			PredictorBits:  14,
			MaxSimAccesses: 768,
		},
		Events: pmu.MustTable("cascadelake"),
		Costs:  kernel.DefaultCosts(),
	}
	return p
}

// LiMiTKernel returns the Nehalem machine running the patched legacy
// kernel (Ubuntu 12.04, 2.6.32 + LiMiT) the paper used for its LiMiT rows.
func LiMiTKernel() Profile {
	p := Nehalem()
	p.Name = "nehalem-i7-920-limit"
	p.Kernel.LiMiTPatch = true
	return p
}

// Machine is a booted simulated system.
type Machine struct {
	prof Profile
	core *cpu.Core
	kern *kernel.Kernel
}

// Boot builds the core, PMU and kernel for prof. seed drives every noise
// source in this machine; equal seeds give bit-identical runs.
func Boot(prof Profile, seed uint64) *Machine {
	root := ktime.NewRand(seed)
	p := pmu.New(prof.Events)
	core := cpu.New(prof.CPU, p, root.Split())
	kern := kernel.New(core, prof.Costs, root.Split(), prof.Kernel)
	return &Machine{prof: prof, core: core, kern: kern}
}

// Profile returns the machine's hardware profile.
func (m *Machine) Profile() Profile { return m.prof }

// Core returns the CPU core.
func (m *Machine) Core() *cpu.Core { return m.core }

// Kernel returns the operating system kernel.
func (m *Machine) Kernel() *kernel.Kernel { return m.kern }
