package machine

import (
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
)

// busyProg runs blocks over a footprint then exits.
func busyProg(blocks int, base, footprint uint64) kernel.Program {
	i := 0
	return kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
		if i >= blocks {
			return kernel.OpExit{}
		}
		i++
		return kernel.OpExec{Block: isa.Block{
			Instr: 200_000, Loads: 70_000, Stores: 20_000, Branches: 15_000,
			Mem:  isa.MemPattern{Base: base, Footprint: footprint, Stride: 8, RandomFrac: 0.3},
			Priv: isa.User,
		}}
	})
}

func quiet() Profile {
	p := Nehalem()
	p.Costs.NoiseRel = 0
	p.Costs.TimerJitterRel = 0
	p.Costs.RunNoiseRel = 0
	return p
}

func TestClusterBootShape(t *testing.T) {
	c := BootCluster(quiet(), 1, 2)
	if len(c.Cores()) != 2 {
		t.Fatalf("cores: %d", len(c.Cores()))
	}
	// All cores front the same LLC instance, but keep private L1/L2.
	llc := c.SharedLLC()
	for i, m := range c.Cores() {
		if m.Core().Caches().LLC() != llc {
			t.Errorf("core %d has a private LLC", i)
		}
		for j, other := range c.Cores() {
			if i != j && m.Core().Caches().L1D() == other.Core().Caches().L1D() {
				t.Error("cores share an L1")
			}
		}
	}
	if BootCluster(quiet(), 1, 0).Cores() == nil {
		t.Error("degenerate size should clamp to one core")
	}
}

func TestClusterRunsCoresInLockstep(t *testing.T) {
	c := BootCluster(quiet(), 2, 2)
	pa := c.Cores()[0].Kernel().Spawn("a", busyProg(100, 0x1000_0000, 1<<20))
	pb := c.Cores()[1].Kernel().Spawn("b", busyProg(100, 0x2000_0000, 1<<20))
	if err := c.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if !pa.Exited() || !pb.Exited() {
		t.Fatal("processes did not finish")
	}
	// Identical work on identical cores: exit times within a quantum or so
	// of each other (they run concurrently, not serialized).
	gap := pa.ExitTime().Sub(pb.ExitTime())
	if pb.ExitTime() > pa.ExitTime() {
		gap = pb.ExitTime().Sub(pa.ExitTime())
	}
	if gap > 10*DefaultQuantum {
		t.Errorf("cores diverged by %v; lockstep broken", gap)
	}
}

func TestClusterSharedLLCContention(t *testing.T) {
	// An LLC-resident worker (6MB on the 8MB LLC) alone vs next to a
	// streaming neighbour: the neighbour must slow it down.
	solo := BootCluster(quiet(), 3, 2)
	p := solo.Cores()[0].Kernel().Spawn("victim", busyProg(400, 0x1000_0000, 6<<20))
	if err := solo.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	alone := p.Runtime()

	shared := BootCluster(quiet(), 3, 2)
	v := shared.Cores()[0].Kernel().Spawn("victim", busyProg(400, 0x1000_0000, 6<<20))
	shared.Cores()[1].Kernel().Spawn("stream", busyProg(2000, 0x9000_0000, 64<<20))
	if err := shared.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	contended := v.Runtime()

	if float64(contended) < 1.1*float64(alone) {
		t.Errorf("no LLC contention visible: alone=%v contended=%v", alone, contended)
	}
}

func TestClusterRunLimit(t *testing.T) {
	c := BootCluster(quiet(), 4, 2)
	c.Cores()[0].Kernel().Spawn("forever", kernel.ProgramFunc(
		func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
			return kernel.OpExec{Block: isa.Block{
				Instr: 100_000, Loads: 20_000,
				Mem:  isa.MemPattern{Base: 0x1000, Footprint: 64 << 10, Stride: 8},
				Priv: isa.User,
			}}
		}))
	if err := c.Run(0, 5*ktime.Millisecond); err != nil {
		t.Fatal(err)
	}
	now := c.Cores()[0].Kernel().Now()
	if now < ktime.Time(5*ktime.Millisecond) || now > ktime.Time(6*ktime.Millisecond) {
		t.Errorf("limit not honored: %v", now)
	}
}

func TestClusterPerCorePMUsIndependent(t *testing.T) {
	c := BootCluster(quiet(), 5, 2)
	// Program core 0's PMU only; core 1's work must not land in it.
	pm0 := c.Cores()[0].Core().PMU()
	enc, _ := quiet().Events.EncodingFor(isa.EvLoads)
	if err := pm0.WriteMSR(0x186, enc.Sel(1<<16|1<<22)); err != nil { // USR|EN
		t.Fatal(err)
	}
	if err := pm0.WriteMSR(0x38F, 1); err != nil {
		t.Fatal(err)
	}
	c.Cores()[1].Kernel().Spawn("other", busyProg(50, 0x5000_0000, 1<<20))
	if err := c.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := pm0.ReadMSR(0xC1); v != 0 {
		t.Errorf("core 1's loads leaked into core 0's PMU: %d", v)
	}
}

// TestClusterIndependentMonitoringPerCore proves per-core K-LEB isolation
// at the machine level indirectly: each core's kernel carries its own
// module registry and devices, so two cores can host independent
// monitoring stacks without any shared state beyond the LLC.
func TestClusterIndependentKernelsPerCore(t *testing.T) {
	c := BootCluster(quiet(), 7, 2)
	k0, k1 := c.Cores()[0].Kernel(), c.Cores()[1].Kernel()
	if k0 == k1 {
		t.Fatal("cores share a kernel")
	}
	// The same device name registers independently on each core's kernel.
	if err := k0.RegisterDevice("dev", nil); err != nil {
		t.Fatal(err)
	}
	if err := k1.RegisterDevice("dev", nil); err != nil {
		t.Errorf("core 1's device namespace collided with core 0's: %v", err)
	}
	if err := k0.RegisterDevice("dev", nil); err == nil {
		t.Error("same-kernel collision not detected")
	}
}
