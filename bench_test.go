// Benchmarks regenerating every table and figure of the paper (DESIGN.md
// §3). Each benchmark runs a compact configuration of its experiment per
// iteration and reports the paper's headline quantities as custom metrics,
// so `go test -bench=. -benchmem` reproduces the whole evaluation:
//
//	BenchmarkTable1LinpackGFLOPS    — Table I
//	BenchmarkTable2MatmulOverhead   — Table II
//	BenchmarkTable3DgemmOverhead    — Table III
//	BenchmarkFig4LinpackSeries      — Fig 4
//	BenchmarkFig5DockerMPKI         — Fig 5
//	BenchmarkFig6MeltdownCounts     — Fig 6
//	BenchmarkFig7MeltdownSeries     — Fig 7
//	BenchmarkFig8OverheadSpread     — Fig 8
//	BenchmarkFig9CountAccuracy      — Fig 9
//	BenchmarkTimerGranularity       — §II-C/§III timer study
//	BenchmarkRateSweep              — §V/§VI rate ablation
//
// Metric shapes (who wins, rough factors) reproduce the paper; absolute
// values come from the calibrated simulator (see DESIGN.md §1).
package kleb_test

import (
	"testing"

	"kleb/internal/experiments"
	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/trace"
)

func BenchmarkTable1LinpackGFLOPS(b *testing.B) {
	var res *experiments.LinpackResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunLinpack(experiments.LinpackConfig{
			Trials: 2, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	base, _ := res.Row("none")
	kleb, _ := res.Row("kleb")
	stat, _ := res.Row("perf-stat")
	rec, _ := res.Row("perf-record")
	b.ReportMetric(base.GFLOPS, "GFLOPS/none")
	b.ReportMetric(kleb.GFLOPS, "GFLOPS/kleb")
	b.ReportMetric(kleb.LossPct, "loss%/kleb")
	b.ReportMetric(stat.LossPct, "loss%/perf-stat")
	b.ReportMetric(rec.LossPct, "loss%/perf-record")
}

func benchOverhead(b *testing.B, w experiments.Workload, stockOnly bool) {
	var res *experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunOverhead(experiments.OverheadConfig{
			Workload: w, Trials: 3, Seed: uint64(i) + 1, StockKernelOnly: stockOnly,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Unsupported != "" {
			b.ReportMetric(-1, "overhead%/"+string(row.Tool))
			continue
		}
		b.ReportMetric(row.Mean, "overhead%/"+string(row.Tool))
	}
}

func BenchmarkTable2MatmulOverhead(b *testing.B) {
	benchOverhead(b, experiments.WorkloadTriple, false)
}

func BenchmarkTable3DgemmOverhead(b *testing.B) {
	benchOverhead(b, experiments.WorkloadDgemm, true)
}

func BenchmarkFig4LinpackSeries(b *testing.B) {
	var res *experiments.LinpackResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunLinpack(experiments.LinpackConfig{
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Series[isa.EvMulOps])), "samples")
	// Phase contrast: solve-region multiplication rate vs the init/setup
	// head (the flat stretch of Fig 4).
	muls := res.Series[isa.EvMulOps]
	tenth := len(muls) / 10
	var head, tail float64
	for i, v := range muls {
		if i < tenth {
			head += v
		} else {
			tail += v
		}
	}
	if head == 0 {
		head = 1
	}
	b.ReportMetric(tail/float64(len(muls)-tenth)/(head/float64(tenth)), "mul-phase-contrast")
}

func BenchmarkFig5DockerMPKI(b *testing.B) {
	var res *experiments.DockerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunDocker(experiments.DockerConfig{
			Seed: uint64(i) + 1, BothMachines: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	match := 0
	for _, row := range res.Rows {
		if row.Class == row.Expected {
			match++
		}
	}
	b.ReportMetric(float64(match)/float64(len(res.Rows))*100, "class-match%")
	for _, row := range res.RowsFor("nehalem-i7-920") {
		b.ReportMetric(row.MPKI, "MPKI/"+row.Image)
	}
}

func benchMeltdown(b *testing.B) *experiments.MeltdownResult {
	var res *experiments.MeltdownResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunMeltdown(experiments.MeltdownConfig{
			Rounds: 10, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFig6MeltdownCounts(b *testing.B) {
	res := benchMeltdown(b)
	b.ReportMetric(res.Victim.LLCRefs, "LLCrefs/victim")
	b.ReportMetric(res.Attack.LLCRefs, "LLCrefs/meltdown")
	b.ReportMetric(res.Victim.LLCMisses, "LLCmiss/victim")
	b.ReportMetric(res.Attack.LLCMisses, "LLCmiss/meltdown")
	b.ReportMetric(res.Victim.MPKI, "MPKI/victim")
	b.ReportMetric(res.Attack.MPKI, "MPKI/meltdown")
}

func BenchmarkFig7MeltdownSeries(b *testing.B) {
	res := benchMeltdown(b)
	b.ReportMetric(res.Victim.MeanSamples, "samples@100us/victim")
	b.ReportMetric(res.Attack.MeanSamples, "samples@100us/meltdown")
	b.ReportMetric(res.Victim.PerfStatSmpls, "samples@10ms/victim")
}

func BenchmarkFig8OverheadSpread(b *testing.B) {
	var res *experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunOverhead(experiments.OverheadConfig{
			Workload: experiments.WorkloadTriple, Trials: 5, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Unsupported != "" {
			continue
		}
		b.ReportMetric(trace.Summarize(row.Normalized).Stddev*1000,
			"norm-stddev(x1000)/"+string(row.Tool))
	}
}

func BenchmarkFig9CountAccuracy(b *testing.B) {
	var res *experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAccuracy(experiments.AccuracyConfig{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Unsupported != "" {
			continue
		}
		b.ReportMetric(row.MaxPct, "maxdiff%/"+string(row.Tool))
	}
}

func BenchmarkTimerGranularity(b *testing.B) {
	var res *experiments.TimerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTimers(uint64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Requested == 100*ktime.Microsecond {
			b.ReportMetric(row.AchievedAvg.Microseconds(), "achieved-us@100us/"+row.Facility)
		}
	}
}

func BenchmarkRateSweep(b *testing.B) {
	var res *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunSweep(experiments.SweepConfig{
			Periods: []ktime.Duration{100 * ktime.Microsecond, ktime.Millisecond, 10 * ktime.Millisecond},
			Trials:  2,
			Seed:    uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Tool != experiments.KLEB {
			continue
		}
		b.ReportMetric(row.OverheadPct, "overhead%@"+row.RequestedPeriod.String())
	}
}

func BenchmarkBufferAblation(b *testing.B) {
	var res *experiments.BufferAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunBufferAblation(experiments.BufferAblationConfig{
			Sizes: []int{64, 1024, 8192}, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.CoveragePct, "coverage%/ring-"+itoa(row.Size))
	}
}

func BenchmarkDrainAblation(b *testing.B) {
	var res *experiments.DrainAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunDrainAblation(experiments.DrainAblationConfig{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.OverheadPct, "overhead%/drain-"+row.Interval.String())
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkColocation(b *testing.B) {
	var res *experiments.ColocateResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunColocate(experiments.ColocateConfig{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pair := range [][2]string{{"mysql", "ruby"}, {"mysql", "mysql"}, {"mysql", "apache"}} {
		if c, ok := res.Cell(pair[0], pair[1]); ok {
			b.ReportMetric(c.Slowdown, "slowdown/"+pair[0]+"|"+pair[1])
		}
	}
}

func BenchmarkCharacterization(b *testing.B) {
	var res *experiments.CharacterizeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunCharacterize(experiments.CharacterizeConfig{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.IPC, "IPC/"+row.Name)
		b.ReportMetric(row.MPKI, "MPKI/"+row.Name)
	}
}
