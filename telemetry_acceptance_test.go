package kleb_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kleb"
)

// collectTelemetry runs one Collect with trace + metrics capture.
func collectTelemetry(t *testing.T, opts kleb.CollectOptions) (traceJSON, metrics []byte, report *kleb.Report) {
	t.Helper()
	var tr, mx bytes.Buffer
	opts.Trace = &tr
	opts.Metrics = &mx
	report, err := kleb.Collect(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Bytes(), mx.Bytes(), report
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Args map[string]any `json:"args"`
}

func decodeTrace(t *testing.T, raw []byte) []traceEvent {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("Collect trace is not valid Chrome trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

// TestCollectTraceAcceptance is the PR's acceptance check: a full K-LEB
// collection at the paper's 100µs period exports a valid Chrome trace
// holding context switches, HRTimer fires with their jitter delta, K-LEB
// ring activity and all four session lifecycle stages.
func TestCollectTraceAcceptance(t *testing.T) {
	traceJSON, metrics, report := collectTelemetry(t, kleb.CollectOptions{
		Workload: kleb.Synthetic(100_000_000, 1<<20, 0.02),
		Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
		Period:   100 * kleb.Microsecond,
		Seed:     7,
	})
	if len(report.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	events := decodeTrace(t, traceJSON)
	count := map[string]int{}
	jitterArgs := 0
	for _, e := range events {
		count[e.Name]++
		if e.Name == "hrtimer-fire" {
			if _, ok := e.Args["jitter_ns"]; ok {
				jitterArgs++
			}
		}
	}
	for _, name := range []string{
		"ctx-switch", "hrtimer-fire", "hrtimer-arm", "kprobe:switch",
		"ioctl:kleb", "kleb-ring",
		"stage:boot", "stage:attach", "stage:drive", "stage:drain",
	} {
		if count[name] == 0 {
			t.Errorf("trace has no %q events (have: %v)", name, count)
		}
	}
	if jitterArgs != count["hrtimer-fire"] {
		t.Errorf("%d of %d hrtimer-fire events carry jitter_ns", jitterArgs, count["hrtimer-fire"])
	}
	// A 100µs-period K-LEB run fires its timer roughly once per sample.
	if count["hrtimer-fire"] < len(report.Samples)/2 {
		t.Errorf("only %d hrtimer-fire events for %d samples", count["hrtimer-fire"], len(report.Samples))
	}

	text := string(metrics)
	for _, family := range []string{
		"kleb_hrtimer_jitter_ns_bucket{", "kleb_hrtimer_jitter_ns_count",
		"kleb_ctx_switches_total", "kleb_samples_total", "kleb_stage_ns_total{stage=\"drive\"}",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("Prometheus output is missing %s:\n%s", family, text)
		}
	}
}

// TestCollectTracePMI checks the interrupt path: perf-record samples via
// counter-overflow PMIs, so its trace must carry pmi events (with delivery
// latency) and pmu-overflow events.
func TestCollectTracePMI(t *testing.T) {
	traceJSON, metrics, _ := collectTelemetry(t, kleb.CollectOptions{
		Workload: kleb.Synthetic(100_000_000, 1<<20, 0.02),
		Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
		Tool:     kleb.ToolPerfRecord,
		Seed:     7,
	})
	pmis, overflows := 0, 0
	for _, e := range decodeTrace(t, traceJSON) {
		switch e.Name {
		case "pmi":
			pmis++
			if _, ok := e.Args["latency_ns"]; !ok {
				t.Fatal("pmi event lacks latency_ns")
			}
		case "pmu-overflow":
			overflows++
		}
	}
	if pmis == 0 || overflows == 0 {
		t.Errorf("perf-record trace: %d pmi, %d pmu-overflow events, want both > 0", pmis, overflows)
	}
	if !strings.Contains(string(metrics), "kleb_pmi_latency_ns_count") {
		t.Error("metrics lack the PMI latency histogram")
	}
}

// TestCollectTelemetryDeterminism pins the facade-level guarantee: for a
// fixed seed the exported trace and metrics are byte-identical across
// repeats and across scheduler worker counts (Baseline forces a multi-run
// batch through the scheduler).
func TestCollectTelemetryDeterminism(t *testing.T) {
	run := func(workers int) ([]byte, []byte) {
		tr, mx, _ := collectTelemetry(t, kleb.CollectOptions{
			Workload: kleb.Synthetic(60_000_000, 1<<20, 0.02),
			Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
			Period:   kleb.Millisecond,
			Seed:     11,
			Baseline: true,
			Workers:  workers,
		})
		return tr, mx
	}
	refTr, refMx := run(1)
	if len(refTr) == 0 || len(refMx) == 0 {
		t.Fatal("empty telemetry export")
	}
	for _, workers := range []int{1, 2, 8} {
		tr, mx := run(workers)
		if !bytes.Equal(refTr, tr) {
			t.Errorf("trace differs from the 1-worker reference at %d workers", workers)
		}
		if !bytes.Equal(refMx, mx) {
			t.Errorf("metrics differ from the 1-worker reference at %d workers", workers)
		}
	}
}

// TestCollectControllerLogOverride covers the injectable controller log
// path: the CSV lands at the requested simulated-FS path and matches what
// the default path produces for the same seed.
func TestCollectControllerLogOverride(t *testing.T) {
	base := kleb.CollectOptions{
		Workload: kleb.Synthetic(60_000_000, 1<<20, 0.02),
		Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
		Period:   kleb.Millisecond,
		Seed:     3,
	}
	def, err := kleb.Collect(base)
	if err != nil {
		t.Fatal(err)
	}
	custom := base
	custom.ControllerLog = "/data/run42/kleb.csv"
	over, err := kleb.Collect(custom)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.ControllerLog) == 0 {
		t.Fatal("no controller log found at the overridden path")
	}
	if !bytes.Equal(def.ControllerLog, over.ControllerLog) {
		t.Error("controller log content changed when only its path moved")
	}
}
